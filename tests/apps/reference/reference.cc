#include "tests/apps/reference/reference.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>

#include "sim/rng.hh"
#include "util/crc32.hh"
#include "util/murmur64.hh"

namespace dpu::apps::refmodel {

namespace {

std::uint64_t
align64(std::uint64_t v)
{
    return (v + 63) & ~std::uint64_t(63);
}

/** Contiguous per-lane share, per the serving contract. */
struct Slice
{
    std::uint64_t begin = 0;
    std::uint64_t count = 0;
};

Slice
laneSlice(std::uint64_t total, unsigned n_lanes, unsigned lane)
{
    const std::uint64_t per = (total + n_lanes - 1) / n_lanes;
    const std::uint64_t b =
        std::min<std::uint64_t>(total, lane * per);
    const std::uint64_t e = std::min<std::uint64_t>(total, b + per);
    return {b, e - b};
}

void
put64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    const std::size_t at = out.size();
    out.resize(at + 8);
    std::memcpy(out.data() + at, &v, 8);
}

} // namespace

// ----------------------------------------------------------------
// SQL filter: one pass-count word per lane
// ----------------------------------------------------------------

std::vector<Region>
filterRef(const sql::FilterConfig &cfg, const Geometry &g)
{
    const std::uint64_t rows =
        std::uint64_t(cfg.rowsPerCore) * g.nLanes;
    sim::Rng rng{g.seed ^ cfg.seed};
    std::vector<std::uint32_t> col(rows);
    for (auto &x : col)
        x = std::uint32_t(rng.below(1000));

    Region out;
    out.base = g.arena + align64(rows * 4);
    for (unsigned l = 0; l < g.nLanes; ++l) {
        const Slice sl = laneSlice(rows, g.nLanes, l);
        std::uint64_t passed = 0;
        for (std::uint64_t i = 0; i < sl.count; ++i) {
            const std::uint32_t x = col[sl.begin + i];
            passed += (x >= cfg.lo && x <= cfg.hi);
        }
        put64(out.bytes, passed);
    }
    return {out};
}

// ----------------------------------------------------------------
// Group-by: one ndv-entry sum table per lane
// ----------------------------------------------------------------

std::vector<Region>
groupByRef(const sql::GroupByConfig &cfg, const Geometry &g)
{
    const std::uint64_t rows = cfg.nRows;
    sim::Rng rng{g.seed ^ cfg.seed};
    std::vector<std::uint32_t> v(rows * 2);
    for (std::uint64_t r = 0; r < rows; ++r) {
        v[r * 2] = std::uint32_t(rng.below(cfg.ndv));
        v[r * 2 + 1] = std::uint32_t(rng.below(1 << 16));
    }

    Region out;
    out.base = g.arena + align64(rows * 8);
    for (unsigned l = 0; l < g.nLanes; ++l) {
        const Slice sl = laneSlice(rows, g.nLanes, l);
        std::vector<std::uint64_t> table(cfg.ndv, 0);
        for (std::uint64_t i = 0; i < sl.count; ++i) {
            const std::uint64_t r = sl.begin + i;
            table[v[r * 2]] += v[r * 2 + 1];
        }
        for (std::uint64_t sum : table)
            put64(out.bytes, sum);
    }
    return {out};
}

// ----------------------------------------------------------------
// HLL: one m-byte register file per lane
// ----------------------------------------------------------------

std::vector<Region>
hllRef(const HllConfig &cfg, const Geometry &g)
{
    const std::uint32_t m = 1u << cfg.pBits;
    const std::uint64_t n = cfg.nElements;
    HllConfig gen = cfg;
    gen.seed = g.seed ^ cfg.seed;
    sim::Rng rng{gen.seed};
    std::vector<std::uint64_t> data(n);
    for (auto &e : data) {
        std::uint64_t x = rng.below(cfg.cardinality);
        e = (x + 0x9e3779b97f4a7c15ull) * 0xbf58476d1ce4e5b9ull;
    }

    Region out;
    out.base = g.arena + align64(n * 8);
    for (unsigned l = 0; l < g.nLanes; ++l) {
        const Slice sl = laneSlice(n, g.nLanes, l);
        std::vector<std::uint8_t> regs(m, 0);
        for (std::uint64_t i = 0; i < sl.count; ++i) {
            const std::uint64_t e = data[sl.begin + i];
            std::uint64_t h;
            if (cfg.hash == HllHash::Crc32) {
                const std::uint32_t lo = util::crc32Key64(e);
                const std::uint32_t hi =
                    util::crc32Key(lo ^ std::uint32_t(e >> 32));
                h = (std::uint64_t(hi) << 32) | lo;
            } else {
                h = util::murmur64Key(e);
            }
            unsigned rank;
            std::uint32_t idx;
            if (cfg.useNtz) {
                idx = std::uint32_t(h) & (m - 1);
                const std::uint64_t w = (h >> cfg.pBits) |
                                        (1ull << (64 - cfg.pBits));
                rank = unsigned(__builtin_ctzll(w)) + 1;
            } else {
                idx = std::uint32_t(h >> (64 - cfg.pBits));
                const std::uint64_t w = (h << cfg.pBits) |
                                        (1ull << (cfg.pBits - 1));
                rank = unsigned(__builtin_clzll(w)) + 1;
            }
            regs[idx] =
                std::max(regs[idx], std::uint8_t(rank));
        }
        out.bytes.insert(out.bytes.end(), regs.begin(),
                         regs.end());
    }
    return {out};
}

// ----------------------------------------------------------------
// JSON: one (records, fields, intSum) triple per lane
// ----------------------------------------------------------------

std::vector<Region>
jsonRef(const JsonConfig &cfg, const Geometry &g)
{
    // The input text comes from the same generator the job stages
    // (its exact draw sequence is an input, not a behaviour under
    // test). Each record is then accounted analytically: the fixed
    // lineitem schema has 6 fields, and the integer sum is
    // orderkey + partkey + quantity + the price integer part — each
    // extracted here by field name, independent of the parser FSM.
    JsonConfig gen = cfg;
    gen.seed = g.seed ^ cfg.seed;
    const std::string text = jsondetail::makeRecords(gen);

    const auto fieldInt = [](const std::string &rec,
                             const char *name) {
        const std::size_t at = rec.find(name);
        std::uint64_t v = 0;
        for (std::size_t i = at + std::strlen(name);
             i < rec.size() && rec[i] >= '0' && rec[i] <= '9'; ++i)
            v = v * 10 + std::uint64_t(rec[i] - '0');
        return v;
    };

    struct Rec
    {
        std::uint64_t start = 0; ///< byte offset of the '{'
        std::uint64_t intSum = 0;
    };
    std::vector<Rec> recs;
    recs.reserve(cfg.nRecords);
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t end = text.find('\n', pos);
        const std::string rec = text.substr(pos, end - pos);
        recs.push_back(
            {pos, fieldInt(rec, "\"orderkey\":") +
                      fieldInt(rec, "\"partkey\":") +
                      fieldInt(rec, "\"quantity\":") +
                      fieldInt(rec, "\"price\":")});
        pos = end + 1;
    }

    const std::uint64_t bytes = text.size();
    constexpr std::uint32_t pad = 1024;
    const std::uint64_t chunk =
        ((bytes + g.nLanes - 1) / g.nLanes + 3) & ~3ull;

    // A lane owns every record whose first byte falls inside its
    // chunk (the kernels realign on newlines to the same effect).
    Region out;
    out.base = g.arena + align64(bytes + pad);
    std::vector<std::uint64_t> nrec(g.nLanes, 0), isum(g.nLanes, 0);
    for (const Rec &rec : recs) {
        const unsigned lane = unsigned(rec.start / chunk);
        ++nrec[lane];
        isum[lane] += rec.intSum;
    }
    for (unsigned l = 0; l < g.nLanes; ++l) {
        put64(out.bytes, nrec[l]);
        put64(out.bytes, nrec[l] * 6); // fixed schema: 6 fields
        put64(out.bytes, isum[l]);
    }
    return {out};
}

// ----------------------------------------------------------------
// SVM inference: one positive-count word per lane
// ----------------------------------------------------------------

std::vector<Region>
svmRef(const SvmConfig &cfg, const Geometry &g)
{
    const std::uint32_t dims = cfg.dims;
    const std::uint64_t n = cfg.nTest;
    sim::Rng rng{g.seed ^ cfg.seed};
    std::vector<std::int32_t> v(dims + n * std::uint64_t(dims));
    for (auto &x : v)
        x = std::int32_t(rng.below(2048)) - 1024;

    const mem::Addr x_base = g.arena + align64(dims * 4);
    Region out;
    out.base = x_base + align64(n * std::uint64_t(dims) * 4);
    for (unsigned l = 0; l < g.nLanes; ++l) {
        const Slice sl = laneSlice(n, g.nLanes, l);
        std::uint64_t positive = 0;
        for (std::uint64_t i = 0; i < sl.count; ++i) {
            const std::uint64_t r = sl.begin + i;
            std::int64_t dot = 0;
            for (std::uint32_t d = 0; d < dims; ++d)
                dot += std::int64_t(v[d]) * v[dims + r * dims + d];
            positive += dot > 0;
        }
        put64(out.bytes, positive);
    }
    return {out};
}

// ----------------------------------------------------------------
// Similarity search: one Q10.22 score word per lane
// ----------------------------------------------------------------

std::vector<Region>
simSearchRef(const SimSearchConfig &cfg, const Geometry &g)
{
    const std::uint64_t n_post =
        std::uint64_t(cfg.nDocs) * cfg.avgTermsPerDoc;
    const std::uint64_t seed = g.seed ^ cfg.seed;

    sim::Rng qrng{seed};
    std::vector<std::int32_t> q(cfg.vocab, 0);
    for (std::uint32_t t = 0; t < cfg.termsPerQuery; ++t)
        q[qrng.below(cfg.vocab)] =
            std::int32_t(1 + qrng.below(1 << 10));

    sim::Rng prng{seed + 1};
    std::vector<std::uint32_t> post(n_post * 2);
    for (std::uint64_t i = 0; i < n_post; ++i) {
        post[i * 2] = std::uint32_t(prng.below(cfg.vocab));
        post[i * 2 + 1] = std::uint32_t(1 + prng.below(1 << 10));
    }

    const mem::Addr p_base = g.arena + align64(cfg.vocab * 4);
    Region out;
    out.base = p_base + align64(n_post * 8);
    for (unsigned l = 0; l < g.nLanes; ++l) {
        const Slice sl = laneSlice(n_post, g.nLanes, l);
        std::int64_t score = 0;
        for (std::uint64_t i = 0; i < sl.count; ++i) {
            const std::uint64_t at = sl.begin + i;
            score += std::int64_t(q[post[at * 2]]) *
                     std::int32_t(post[at * 2 + 1]);
        }
        put64(out.bytes, std::uint64_t(score));
    }
    return {out};
}

// ----------------------------------------------------------------
// Disparity: the full first-minimum SAD argmin map
// ----------------------------------------------------------------

std::vector<Region>
disparityRef(const DisparityConfig &cfg, const Geometry &g)
{
    const std::uint32_t w = cfg.width, h = cfg.height;
    const std::uint64_t wh = std::uint64_t(w) * h;
    sim::Rng rng{g.seed ^ cfg.seed};
    std::vector<std::uint8_t> img(wh * 2);
    for (auto &px : img)
        px = std::uint8_t(rng.below(256));
    const std::uint8_t *left = img.data();
    const std::uint8_t *right = img.data() + wh;

    Region out;
    out.base = g.arena + 2 * align64(wh);
    out.bytes.resize(wh);
    const int hw = int(cfg.window) / 2;
    for (std::uint32_t y = 0; y < h; ++y) {
        for (std::uint32_t x = 0; x < w; ++x) {
            unsigned best = 0;
            std::int64_t best_sad =
                std::numeric_limits<std::int64_t>::max();
            for (unsigned sft = 0; sft <= cfg.maxShift; ++sft) {
                std::int64_t sad = 0;
                for (int dx = -hw; dx <= hw; ++dx) {
                    const int lx = int(x) + dx;
                    const int rx = lx - int(sft);
                    if (lx < 0 || lx >= int(w) || rx < 0 ||
                        rx >= int(w))
                        continue;
                    sad += std::abs(int(left[y * w + lx]) -
                                    int(right[y * w + rx]));
                }
                if (sad < best_sad) {
                    best_sad = sad;
                    best = sft;
                }
            }
            out.bytes[y * w + x] = std::uint8_t(best);
        }
    }
    return {out};
}

} // namespace dpu::apps::refmodel

/**
 * @file
 * Straight-C++ reference models for every registered serving app.
 *
 * Each function recomputes, on the host with plain loops and no
 * simulator types beyond the RNG, the exact bytes an app's serving
 * job must leave in its DDR output region for a given request
 * geometry (lane count, arena base, request seed). The test layer
 * runs the real kernels through the simulated chip and compares
 * the raw output regions bit-for-bit against these models — an
 * oracle independent of each job's own validate() hook, so a bug
 * that breaks kernel and validator symmetrically still gets
 * caught.
 *
 * The models intentionally re-derive the arena layouts and lane
 * slicing from the serving contracts rather than calling into
 * src/apps: a layout drift in serving.cc shows up here as a
 * mismatch, not as a silently co-moving test.
 */

#ifndef DPU_TESTS_APPS_REFERENCE_HH
#define DPU_TESTS_APPS_REFERENCE_HH

#include <cstdint>
#include <vector>

#include "apps/disparity.hh"
#include "apps/hll.hh"
#include "apps/json.hh"
#include "apps/simsearch.hh"
#include "apps/sql/filter.hh"
#include "apps/sql/groupby.hh"
#include "apps/svm.hh"
#include "mem/backing_store.hh"

namespace dpu::apps::refmodel {

/** The request geometry a serving job was instantiated against. */
struct Geometry
{
    unsigned nLanes = 4;
    mem::Addr arena = 1 << 20;
    std::uint64_t arenaBytes = 6 << 20;
    std::uint64_t seed = 0; ///< ServingContext::seed
};

/** One DDR span the job must have produced, byte-exact. */
struct Region
{
    mem::Addr base = 0;
    std::vector<std::uint8_t> bytes;
};

std::vector<Region> filterRef(const sql::FilterConfig &cfg,
                              const Geometry &g);
std::vector<Region> groupByRef(const sql::GroupByConfig &cfg,
                               const Geometry &g);
std::vector<Region> hllRef(const HllConfig &cfg, const Geometry &g);
std::vector<Region> jsonRef(const JsonConfig &cfg,
                            const Geometry &g);
std::vector<Region> svmRef(const SvmConfig &cfg, const Geometry &g);
std::vector<Region> simSearchRef(const SimSearchConfig &cfg,
                                 const Geometry &g);
std::vector<Region> disparityRef(const DisparityConfig &cfg,
                                 const Geometry &g);

} // namespace dpu::apps::refmodel

#endif // DPU_TESTS_APPS_REFERENCE_HH

/**
 * @file
 * Cross-validation tests for the remaining Section 5 applications:
 * HLL (estimate agreement + the NTZ/CRC design points), JSON
 * (boundary-exact parsing + jump-table vs branchy costs), SVM
 * (fixed-point iteration savings at equal accuracy), similarity
 * search (exact score agreement + naive-DMS ablation), and
 * disparity (bit-exact maps + ground-truth recovery).
 */

#include <gtest/gtest.h>

#include "apps/disparity.hh"
#include "apps/registry.hh"
#include "apps/hll.hh"
#include "apps/json.hh"
#include "apps/simsearch.hh"
#include "apps/svm.hh"

using namespace dpu;
using namespace dpu::apps;

TEST(HllApp, EstimateMatchesBaselineAndTruth)
{
    AppResult r =
        runApp("hll-crc",
               {{"nElements", "524288"}, {"cardinality", "65536"}});
    EXPECT_TRUE(r.matched);
}

TEST(HllApp, CrcBeatsMurmurOnTheDpu)
{
    AppResult crc =
        runApp("hll-crc",
               {{"nElements", "524288"}, {"cardinality", "65536"}});
    AppResult mur =
        runApp("hll-murmur",
               {{"nElements", "524288"}, {"cardinality", "65536"}});
    // Section 5.4: CRC ~9x better than x86; Murmur does poorly on
    // the dpCore's iterative multiplier.
    EXPECT_GT(crc.gain(), 5.0);
    EXPECT_LT(crc.gain(), 13.0);
    EXPECT_LT(mur.gain(), crc.gain() / 2);
}

TEST(HllApp, NtzVariantIsFasterThanNlz)
{
    HllConfig cfg;
    cfg.nElements = 1 << 18;
    cfg.cardinality = 1 << 15;
    cfg.hash = HllHash::Murmur64; // compute-bound: latency visible
    HllResult ntz = dpuHll(soc::dpu40nm(), cfg);
    cfg.useNtz = false;
    HllResult nlz = dpuHll(soc::dpu40nm(), cfg);
    EXPECT_LT(ntz.seconds, nlz.seconds);
    // Same statistics, different bits: both variants estimate the
    // true cardinality within the HLL error bound.
    double truth = double(cfg.cardinality);
    EXPECT_NEAR(ntz.estimate / truth, 1.0, 0.05);
    EXPECT_NEAR(nlz.estimate / truth, 1.0, 0.05);
}

TEST(JsonApp, TallyMatchesBaselineExactly)
{
    AppResult r = runApp("json", {{"nRecords", "8192"}});
    EXPECT_TRUE(r.matched);
}

TEST(JsonApp, ThroughputNearPaperNumbers)
{
    JsonConfig cfg;
    cfg.nRecords = 24 << 10;
    JsonResult d = dpuJson(soc::dpu40nm(), cfg);
    // Section 5.5: 1.73 GB/s with the jump-table parser.
    EXPECT_GT(d.gbPerSec(), 1.2);
    EXPECT_LT(d.gbPerSec(), 2.6);

    cfg.branchyParser = true;
    JsonResult b = dpuJson(soc::dpu40nm(), cfg);
    // Section 5.5: 645 MB/s for the branchy port.
    EXPECT_GT(b.gbPerSec(), 0.45);
    EXPECT_LT(b.gbPerSec(), 0.95);
    EXPECT_EQ(b.tally, d.tally);
}

TEST(JsonApp, GainNearPaper)
{
    AppResult r = runApp("json", {{"nRecords", "24576"}});
    // Figure 14: ~8x.
    EXPECT_GT(r.gain(), 5.0);
    EXPECT_LT(r.gain(), 12.0);
}

TEST(SvmApp, FixedPointConvergesFasterAtEqualAccuracy)
{
    AppResult r =
        runApp("svm", {{"nTrain", "4096"}, {"nTest", "1024"}});
    EXPECT_TRUE(r.matched);
    SvmConfig cfg;
    cfg.nTrain = 4096;
    cfg.nTest = 1024;
    SvmResult d = dpuSvm(soc::dpu40nm(), cfg);
    SvmResult x = xeonSvm(cfg);
    EXPECT_LE(d.iterations, x.iterations);
    EXPECT_GT(d.testAccuracy, 0.8);
    EXPECT_GT(x.testAccuracy, 0.8);
}

TEST(SvmApp, GainAbovePaperFloor)
{
    AppResult r =
        runApp("svm", {{"nTrain", "4096"}, {"nTest", "1024"}});
    // Figure 14: "over 15x more efficient than LIBSVM".
    EXPECT_GT(r.gain(), 10.0);
    EXPECT_LT(r.gain(), 40.0);
}

TEST(SimSearchApp, ScoresMatchBaselineExactly)
{
    AppResult r = runApp(
        "simsearch", {{"nDocs", "8192"}, {"nQueries", "16"}});
    EXPECT_TRUE(r.matched);
}

TEST(SimSearchApp, GainNearPaper)
{
    AppResult r = runApp("simsearch");
    // Figure 14: 3.9x — the smallest gain of the suite, because
    // the DPU full-scans while the Xeon touches useful postings.
    EXPECT_GT(r.gain(), 2.5);
    EXPECT_LT(r.gain(), 7.0);
}

TEST(SimSearchApp, NaiveDmsCollapsesBandwidth)
{
    SimSearchConfig cfg;
    cfg.nDocs = 8 << 10;
    cfg.nQueries = 16;
    SimSearchResult dyn = dpuSimSearch(soc::dpu40nm(), cfg);
    cfg.naiveDms = true;
    SimSearchResult naive = dpuSimSearch(soc::dpu40nm(), cfg);
    // Section 5.2: 0.26 GB/s naive vs 5.24 GB/s dynamic. The exact
    // ratio depends on range sizes; an order of magnitude must
    // separate them.
    EXPECT_GT(dyn.effectiveGbPerSec() /
                  naive.effectiveGbPerSec(), 8.0);
    EXPECT_EQ(dyn.scoreChecksum, naive.scoreChecksum);
}

TEST(DisparityApp, MapsAreBitExactAndRecoverTruth)
{
    AppResult r = runApp("disparity", {{"width", "256"},
                                       {"height", "128"},
                                       {"maxShift", "16"}});
    EXPECT_TRUE(r.matched);
}

TEST(DisparityApp, GainNearPaper)
{
    AppResult r = runApp("disparity");
    // Figure 14: 8.6x.
    EXPECT_GT(r.gain(), 5.0);
    EXPECT_LT(r.gain(), 14.0);
}

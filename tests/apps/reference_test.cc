/**
 * @file
 * Reference-model validation: every registered app, run through
 * the real serving path on a simulated chip with randomized
 * request seeds, must leave byte-identical output in DDR to the
 * straight-C++ models in reference/. This is an oracle independent
 * of each job's own validate() hook — a kernel bug mirrored into
 * its validator still fails here — and doubles as a layout
 * contract: the models re-derive every arena offset, so a layout
 * drift in serving.cc is a test failure, not a silent co-move.
 */

#include <gtest/gtest.h>

#include <memory>

#include "apps/common.hh"
#include "apps/registry.hh"
#include "reference/reference.hh"
#include "sim/fault.hh"
#include "sim/rng.hh"
#include "soc/soc.hh"

using namespace dpu;
using namespace dpu::apps;
using refmodel::Geometry;
using refmodel::Region;

namespace {

/** Randomized-but-reproducible request seeds per app. */
constexpr unsigned nTrials = 3;

std::uint64_t
trialSeed(std::string_view app, unsigned trial)
{
    sim::Rng rng{0x4ef0000ull + trial * 0x9e37ull};
    std::uint64_t h = rng.next();
    for (char c : app)
        h = (h ^ std::uint8_t(c)) * 0x100000001b3ull;
    return h;
}

/**
 * Run @p app's serving job on a fresh chip with geometry @p g and
 * config mutations @p opts; every region of @p expect must match
 * the resulting DDR bytes exactly. The job's own validator is
 * asserted too, so a reference bug cannot silently pass either.
 */
void
checkApp(std::string_view app,
         std::initializer_list<
             std::pair<std::string_view, std::string_view>>
             opts,
         const Geometry &g,
         std::vector<Region> (*ref)(const ConfigHandle &,
                                    const Geometry &))
{
    const AppSpec *spec = findApp(app);
    ASSERT_NE(spec, nullptr) << app;
    ConfigHandle cfg = spec->makeConfig();
    for (const auto &[k, v] : opts)
        ASSERT_TRUE(spec->set(cfg, k, v)) << app << " " << k;

    sim::faultPlane().reset();
    soc::Soc s;
    ServingContext ctx;
    ctx.soc = &s;
    ctx.baseCore = 0;
    ctx.nLanes = g.nLanes;
    ctx.arena = g.arena;
    ctx.arenaBytes = g.arenaBytes;
    ctx.seed = g.seed;

    ServingJob job = spec->serve(cfg, ctx);
    auto shared = std::make_shared<ServingJob>(std::move(job));
    shared->stage();
    for (unsigned l = 0; l < g.nLanes; ++l)
        s.start(l, [shared, l](core::DpCore &c) {
            shared->lane(c, l);
        });
    s.run();
    ASSERT_TRUE(s.allFinished()) << app;
    EXPECT_TRUE(shared->validate()) << app;

    const std::vector<Region> regions = ref(cfg, g);
    ASSERT_FALSE(regions.empty());
    for (const Region &r : regions) {
        ASSERT_FALSE(r.bytes.empty());
        const auto got =
            unstage<std::uint8_t>(s, r.base, r.bytes.size());
        EXPECT_EQ(got, r.bytes)
            << app << " output region @" << std::hex << r.base;
    }
}

/** Adapt a typed reference model to the opaque ConfigHandle. */
template <typename Cfg,
          std::vector<Region> (*Fn)(const Cfg &, const Geometry &)>
std::vector<Region>
typedRef(const ConfigHandle &cfg, const Geometry &g)
{
    return Fn(*static_cast<const Cfg *>(cfg.get()), g);
}

Geometry
trialGeometry(std::string_view app, unsigned trial)
{
    Geometry g;
    g.nLanes = 4;
    g.seed = trialSeed(app, trial);
    return g;
}

} // namespace

TEST(ReferenceModel, Filter)
{
    for (unsigned t = 0; t < nTrials; ++t)
        checkApp("filter", {{"rowsPerCore", "8192"}},
                 trialGeometry("filter", t),
                 typedRef<sql::FilterConfig, refmodel::filterRef>);
}

TEST(ReferenceModel, GroupByLow)
{
    for (unsigned t = 0; t < nTrials; ++t)
        checkApp("groupby-low", {{"nRows", "32768"}},
                 trialGeometry("groupby-low", t),
                 typedRef<sql::GroupByConfig,
                          refmodel::groupByRef>);
}

TEST(ReferenceModel, GroupByHigh)
{
    // The serving path needs the sum table in DMEM, so the
    // high-NDV entry serves at its DMEM-bounded operating point.
    for (unsigned t = 0; t < nTrials; ++t)
        checkApp("groupby-high",
                 {{"nRows", "32768"}, {"ndv", "1024"}},
                 trialGeometry("groupby-high", t),
                 typedRef<sql::GroupByConfig,
                          refmodel::groupByRef>);
}

TEST(ReferenceModel, HllCrc)
{
    for (unsigned t = 0; t < nTrials; ++t)
        checkApp("hll-crc",
                 {{"nElements", "16384"}, {"cardinality", "4096"}},
                 trialGeometry("hll-crc", t),
                 typedRef<HllConfig, refmodel::hllRef>);
}

TEST(ReferenceModel, HllMurmur)
{
    for (unsigned t = 0; t < nTrials; ++t)
        checkApp("hll-murmur",
                 {{"nElements", "16384"}, {"cardinality", "4096"}},
                 trialGeometry("hll-murmur", t),
                 typedRef<HllConfig, refmodel::hllRef>);
}

TEST(ReferenceModel, HllEstimateWithinBounds)
{
    // Beyond bit-exact registers: the reference registers must
    // also estimate the true cardinality within the HLL error
    // band, tying the layer back to estimator semantics.
    for (unsigned t = 0; t < nTrials; ++t) {
        Geometry g = trialGeometry("hll-bound", t);
        HllConfig cfg;
        cfg.nElements = 16384;
        cfg.cardinality = 4096;
        const auto regions = refmodel::hllRef(cfg, g);
        ASSERT_EQ(regions.size(), 1u);
        const std::uint32_t m = 1u << cfg.pBits;
        std::vector<std::uint8_t> merged(m, 0);
        for (unsigned l = 0; l < g.nLanes; ++l)
            for (std::uint32_t i = 0; i < m; ++i)
                merged[i] = std::max(
                    merged[i], regions[0].bytes[l * m + i]);
        const double est = hlldetail::estimate(merged);
        EXPECT_NEAR(est / double(cfg.cardinality), 1.0, 0.1);
    }
}

TEST(ReferenceModel, Json)
{
    for (unsigned t = 0; t < nTrials; ++t)
        checkApp("json", {{"nRecords", "1024"}},
                 trialGeometry("json", t),
                 typedRef<JsonConfig, refmodel::jsonRef>);
}

TEST(ReferenceModel, Svm)
{
    for (unsigned t = 0; t < nTrials; ++t)
        checkApp("svm", {{"nTest", "1024"}, {"dims", "28"}},
                 trialGeometry("svm", t),
                 typedRef<SvmConfig, refmodel::svmRef>);
}

TEST(ReferenceModel, SimSearch)
{
    for (unsigned t = 0; t < nTrials; ++t)
        checkApp("simsearch",
                 {{"nDocs", "512"}, {"vocab", "2048"}},
                 trialGeometry("simsearch", t),
                 typedRef<SimSearchConfig,
                          refmodel::simSearchRef>);
}

TEST(ReferenceModel, Disparity)
{
    for (unsigned t = 0; t < nTrials; ++t)
        checkApp("disparity",
                 {{"width", "64"}, {"height", "32"},
                  {"maxShift", "8"}},
                 trialGeometry("disparity", t),
                 typedRef<DisparityConfig, refmodel::disparityRef>);
}

TEST(ReferenceModel, CoversEveryRegisteredApp)
{
    // A new registry entry must come with a reference model: this
    // list is the suite's coverage contract.
    const char *covered[] = {"svm",        "simsearch",
                             "filter",     "groupby-low",
                             "groupby-high", "hll-crc",
                             "hll-murmur", "json",
                             "disparity"};
    for (const AppSpec &spec : registry()) {
        bool found = false;
        for (const char *name : covered)
            found = found || spec.name == name;
        EXPECT_TRUE(found)
            << "app \"" << spec.name
            << "\" has no reference model in tests/apps/reference";
    }
}

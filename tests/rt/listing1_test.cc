/**
 * @file
 * The paper's Listing 1, nearly verbatim: 16 MB of contiguous data
 * streamed from DRAM through a 32 KB DMEM with exactly THREE
 * descriptors (two 1 KB ping-pong buffers + one loop descriptor,
 * 8191 iterations, 16384 total buffers), consuming each buffer with
 * wfe / clear_event. Verifies the checksum, the descriptor count,
 * and that the stream runs near DDR line speed (Section 3.1: "16MB
 * of data can be streamed through a DMEM of 32KB at line speeds
 * with just three DMS descriptors").
 */

#include <gtest/gtest.h>

#include "rt/dms_ctl.hh"
#include "soc/soc.hh"

using namespace dpu;

TEST(Listing1, SixteenMegabytesThreeDescriptors)
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 24 << 20;
    soc::Soc s(p);

    const mem::Addr src_addr = 0;
    const std::uint32_t total = 16 << 20;
    std::uint64_t expect = 0;
    for (std::uint32_t i = 0; i < total / 4; ++i) {
        std::uint32_t v = i * 0x9e3779b9u;
        s.memory().store().store<std::uint32_t>(src_addr + i * 4, v);
        expect += v;
    }

    std::uint64_t sum = 0;
    std::uint32_t count = 0;
    s.start(0, [&](core::DpCore &c) {
        rt::DmsCtl ctl(c, s.dms());
        const std::uint16_t dest_addr = 0;

        // dms_descriptor* desc0 = dms_setup_ddr_to_dmem(256,
        //     src_addr, dest_addr, event0);
        auto desc0 =
            ctl.setupDdrToDmem(256, 4, src_addr, dest_addr, 0);
        // dms_descriptor* desc1 = dms_setup_ddr_to_dmem(256,
        //     src_addr, dest_addr + 1024, event1);
        auto desc1 =
            ctl.setupDdrToDmem(256, 4, src_addr, dest_addr + 1024, 1);
        // dms_descriptor* loop = dms_setup_loop(desc0, 8191);
        auto loop = ctl.setupLoop(desc0, 8191);

        ctl.push(desc0);
        ctl.push(desc1);
        ctl.push(loop);

        unsigned events[] = {0, 1};
        unsigned buffer_index = 0;
        count = 0;
        do {
            ctl.wfe(events[buffer_index]);
            // consume_rows();
            std::uint32_t base = buffer_index ? 1024u : 0u;
            for (std::uint32_t i = 0; i < 256; ++i)
                sum += c.dmem().load<std::uint32_t>(base + i * 4);
            c.dualIssue(256, 256);
            ctl.clearEvent(events[buffer_index]);
            buffer_index = 1 - buffer_index; // toggle index
        } while (++count != 16384);
    });

    sim::Tick t = s.run();
    ASSERT_TRUE(s.allFinished());
    EXPECT_EQ(sum, expect);
    EXPECT_EQ(count, 16384u);

    // Exactly three descriptors drove 16 MB.
    EXPECT_EQ(s.dms().dmac().statGroup().get("bytesToDmem"),
              std::uint64_t(total));

    // "at line speeds": the DMS side runs at line rate; observed
    // throughput is bounded by the consuming core's 4 B/cycle loop
    // (3.2 GB/s at 800 MHz), which it should approach closely.
    double gbs = double(total) / (double(t) * 1e-12) / 1e9;
    EXPECT_GT(gbs, 2.8);
    EXPECT_LT(gbs, 3.3);
}

TEST(Listing1, EventProtocolPreventsOverrun)
{
    // A deliberately slow consumer must never observe torn data:
    // the DMS may not refill a buffer whose event is still set.
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 8 << 20;
    soc::Soc s(p);

    const std::uint32_t total_words = 64 * 1024;
    for (std::uint32_t i = 0; i < total_words; ++i)
        s.memory().store().store<std::uint32_t>(i * 4, i);

    bool torn = false;
    s.start(0, [&](core::DpCore &c) {
        rt::DmsCtl ctl(c, s.dms());
        auto d0 = ctl.setupDdrToDmem(256, 4, 0, 0, 0);
        auto d1 = ctl.setupDdrToDmem(256, 4, 0, 1024, 1);
        auto loop = ctl.setupLoop(d0, 127);
        ctl.push(d0);
        ctl.push(d1);
        ctl.push(loop);

        std::uint32_t next = 0;
        unsigned buf = 0;
        for (std::uint32_t b = 0; b < 256; ++b) {
            ctl.wfe(buf);
            c.sleepCycles(3000); // dawdle while holding the buffer
            std::uint32_t base = buf ? 1024u : 0u;
            for (std::uint32_t i = 0; i < 256; ++i) {
                if (c.dmem().load<std::uint32_t>(base + i * 4) !=
                    next + i)
                    torn = true;
            }
            next += 256;
            ctl.clearEvent(buf);
            buf = 1 - buf;
        }
    });
    s.run();
    ASSERT_TRUE(s.allFinished());
    EXPECT_FALSE(torn);
}

/**
 * @file
 * Property tests for the DMS hardware partitioner: random key
 * streams pushed through all three schemes (CRC hash-radix, raw
 * radix, programmed range) must satisfy the partitioning contract
 * regardless of data:
 *
 *  - multiset preservation: every input row arrives exactly once,
 *    with its payload intact, across the 32 consumer rings;
 *  - shard dictation: a row lands on the core its key's hash (or
 *    radix field, or range bucket) dictates — never elsewhere;
 *  - range boundaries: under Range, each received key respects
 *    bounds[cid-1] < key <= bounds[cid], including keys placed
 *    exactly on the programmed boundaries.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "rt/partition.hh"
#include "sim/fault.hh"
#include "sim/rng.hh"
#include "soc/soc.hh"
#include "util/crc32.hh"

using namespace dpu;

namespace {

constexpr std::uint32_t tableBase = 0x100000;
constexpr unsigned nCols = 2;
constexpr std::uint16_t bufBytes = 1024 + 4;

/** The scheme contract, recomputed host-side. */
unsigned
dictatedCore(const rt::PartitionScheme &scheme, std::uint32_t key)
{
    switch (scheme.kind) {
    case rt::PartitionScheme::Kind::HashRadix: {
        const std::uint64_t k = key; // engine loads colWidth bytes
        const std::uint32_t h = util::crc32(&k, 4);
        return (h >> scheme.radixShift) &
               ((1u << scheme.radixBits) - 1);
    }
    case rt::PartitionScheme::Kind::RawRadix:
        return (key >> scheme.radixShift) &
               ((1u << scheme.radixBits) - 1);
    case rt::PartitionScheme::Kind::Range: {
        const auto it =
            std::lower_bound(scheme.bounds.begin(),
                             scheme.bounds.end(), key);
        return unsigned(std::min<std::ptrdiff_t>(
            it - scheme.bounds.begin(), 31));
    }
    }
    return 0;
}

struct Received
{
    std::uint32_t key = 0;
    unsigned core = 0;
};

/**
 * Push @p keys through the partitioner under @p scheme; returns
 * what each consumer saw, indexed by the payload row tag (so the
 * caller can check delivery exactly once and shard dictation).
 */
std::vector<std::vector<Received>>
partitionRun(const std::vector<std::uint32_t> &keys,
             const rt::PartitionScheme &scheme)
{
    sim::faultPlane().reset();
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 32 << 20;
    soc::Soc s(p);

    const std::uint32_t n_rows = std::uint32_t(keys.size());
    const std::uint32_t stride = n_rows * 4;
    for (std::uint32_t r = 0; r < n_rows; ++r) {
        s.memory().store().store<std::uint32_t>(
            tableBase + r * 4, keys[r]);
        s.memory().store().store<std::uint32_t>(
            tableBase + stride + r * 4, r);
    }

    std::vector<std::vector<Received>> by_tag(n_rows);
    for (unsigned id = 0; id < 32; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            rt::DmsCtl ctl(c, s.dmsFor(c.id()));
            if (id == 0) {
                rt::PartitionJob job;
                job.table = tableBase;
                job.nRows = n_rows;
                job.nCols = nCols;
                job.colWidth = 4;
                job.colStride = stride;
                job.chunkRows = 128;
                job.dstBufBytes = bufBytes;
                job.scheme = scheme;
                rt::runPartition(ctl, job);
            }
            rt::consumePartition(
                ctl, 0, bufBytes, 2, 16,
                [&](std::uint32_t off, std::uint32_t rows) {
                    for (std::uint32_t i = 0; i < rows; ++i) {
                        const std::uint32_t key =
                            c.dmem().load<std::uint32_t>(
                                off + i * nCols * 4);
                        const std::uint32_t tag =
                            c.dmem().load<std::uint32_t>(
                                off + i * nCols * 4 + 4);
                        if (tag < n_rows)
                            by_tag[tag].push_back({key, id});
                    }
                    c.dualIssue(rows * nCols, rows * nCols);
                });
            if (id == 0) {
                ctl.wfe(30);
                ctl.clearEvent(30);
            }
        });
    }
    s.run();
    EXPECT_TRUE(s.allFinished());
    return by_tag;
}

/** The three properties, checked for one (keys, scheme) draw. */
void
checkProperties(const std::vector<std::uint32_t> &keys,
                const rt::PartitionScheme &scheme)
{
    const auto by_tag = partitionRun(keys, scheme);
    ASSERT_EQ(by_tag.size(), keys.size());
    for (std::uint32_t tag = 0; tag < keys.size(); ++tag) {
        // Multiset preservation: exactly once, payload intact.
        ASSERT_EQ(by_tag[tag].size(), 1u) << "row " << tag;
        const Received &rc = by_tag[tag][0];
        EXPECT_EQ(rc.key, keys[tag]) << "row " << tag;
        // Shard dictation.
        EXPECT_EQ(rc.core, dictatedCore(scheme, keys[tag]))
            << "row " << tag << " key " << keys[tag];
        // Range boundary law (redundant with dictation, but states
        // the contract directly against the programmed bounds).
        if (scheme.kind == rt::PartitionScheme::Kind::Range) {
            EXPECT_LE(std::uint64_t(rc.key),
                      scheme.bounds[std::min<unsigned>(rc.core,
                                                       31)]);
            if (rc.core > 0)
                EXPECT_GT(std::uint64_t(rc.key),
                          scheme.bounds[rc.core - 1]);
        }
    }
}

std::vector<std::uint32_t>
randomKeys(sim::Rng &rng, std::uint32_t n)
{
    std::vector<std::uint32_t> keys(n);
    for (auto &k : keys)
        k = std::uint32_t(rng.next());
    return keys;
}

} // namespace

TEST(PartitionProperty, HashRadixRandomStreams)
{
    sim::Rng rng{0x9a57};
    for (unsigned trial = 0; trial < 2; ++trial) {
        rt::PartitionScheme scheme;
        scheme.kind = rt::PartitionScheme::Kind::HashRadix;
        scheme.radixShift = std::uint8_t(rng.below(28));
        checkProperties(
            randomKeys(rng, 2048 + std::uint32_t(rng.below(512))),
            scheme);
    }
}

TEST(PartitionProperty, RawRadixRandomStreams)
{
    sim::Rng rng{0x9a58};
    for (unsigned trial = 0; trial < 2; ++trial) {
        rt::PartitionScheme scheme;
        scheme.kind = rt::PartitionScheme::Kind::RawRadix;
        scheme.radixShift = std::uint8_t(rng.below(28));
        // Skewed low bits: raw radix on random data is uniform, so
        // also stress a clustered distribution.
        std::vector<std::uint32_t> keys = randomKeys(rng, 2048);
        for (std::size_t i = 0; i < keys.size() / 2; ++i)
            keys[i] &= 0xffu << scheme.radixShift;
        checkProperties(keys, scheme);
    }
}

TEST(PartitionProperty, RangeRandomBoundsAndBoundaryKeys)
{
    sim::Rng rng{0x9a59};
    for (unsigned trial = 0; trial < 2; ++trial) {
        rt::PartitionScheme scheme;
        scheme.kind = rt::PartitionScheme::Kind::Range;
        // 31 distinct ascending random bounds, then a catch-all.
        std::vector<std::uint64_t> b;
        while (b.size() < 31) {
            const std::uint64_t v = rng.below(1ull << 32);
            if (std::find(b.begin(), b.end(), v) == b.end())
                b.push_back(v);
        }
        std::sort(b.begin(), b.end());
        b.push_back(~0ull);
        scheme.bounds = b;

        std::vector<std::uint32_t> keys = randomKeys(rng, 2048);
        // Edge cases: keys exactly on, one above, and one below
        // every finite boundary.
        for (unsigned i = 0; i < 31; ++i) {
            keys.push_back(std::uint32_t(b[i]));
            keys.push_back(std::uint32_t(b[i]) + 1);
            if (b[i] > 0)
                keys.push_back(std::uint32_t(b[i]) - 1);
        }
        checkProperties(keys, scheme);
    }
}

TEST(PartitionProperty, DuplicateKeysPreserveMultiplicity)
{
    // Heavy duplication: 16 distinct keys over 4096 rows. The
    // multiset check (every tagged row exactly once) proves no
    // dedup or fan-out happens on collision-heavy streams.
    sim::Rng rng{0x9a5a};
    std::vector<std::uint32_t> pool = randomKeys(rng, 16);
    std::vector<std::uint32_t> keys(4096);
    for (auto &k : keys)
        k = pool[rng.below(pool.size())];
    rt::PartitionScheme scheme;
    scheme.kind = rt::PartitionScheme::Kind::HashRadix;
    checkProperties(keys, scheme);
}

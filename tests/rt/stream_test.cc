/**
 * @file
 * Property tests for the streaming helpers: StreamReader must
 * deliver exactly total_bytes for ANY (size, buffer, ring-depth)
 * combination — including the odd-buffer-count case that once
 * parked a channel forever — and StreamWriter must produce
 * byte-exact output for arbitrary commit patterns. Also covers the
 * heap + stream interplay and dual-channel independence.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "rt/dms_ctl.hh"
#include "rt/heap.hh"
#include "sim/rng.hh"
#include "soc/soc.hh"

using namespace dpu;
using rt::DmsCtl;

namespace {

soc::SocParams
smallParams()
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 16 << 20;
    return p;
}

} // namespace

/** (total_bytes, buf_bytes, n_bufs) sweep. */
class StreamSweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, std::uint32_t, unsigned>>
{
};

TEST_P(StreamSweep, ReaderDeliversExactlyEverything)
{
    auto [total, buf, nbufs] = GetParam();
    soc::Soc s(smallParams());
    for (std::uint64_t i = 0; i < (total + 3) / 4; ++i)
        s.memory().store().store<std::uint32_t>(i * 4,
                                                std::uint32_t(i));

    std::uint64_t seen = 0;
    bool ordered = true;
    s.start(0, [&, total = total, buf = buf,
                nbufs = nbufs](core::DpCore &c) {
        DmsCtl ctl(c, s.dms());
        rt::StreamReader in(ctl, 0, total, 0, buf, nbufs, 0);
        std::uint32_t next = 0;
        in.forEach([&](std::uint32_t off, std::uint32_t blen) {
            for (std::uint32_t i = 0; i + 4 <= blen; i += 4) {
                if (c.dmem().load<std::uint32_t>(off + i) != next++)
                    ordered = false;
            }
            seen += blen;
        });
    });
    s.run();
    ASSERT_TRUE(s.allFinished());
    EXPECT_EQ(seen, total);
    EXPECT_TRUE(ordered);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, StreamSweep,
    ::testing::Values(
        std::make_tuple(std::uint64_t(4096), 1024u, 2u),   // exact
        std::make_tuple(std::uint64_t(5120), 1024u, 2u),   // odd bufs
        std::make_tuple(std::uint64_t(5000), 1024u, 2u),   // partial
        std::make_tuple(std::uint64_t(100), 1024u, 2u),    // tiny
        std::make_tuple(std::uint64_t(1024), 1024u, 2u),   // one buf
        std::make_tuple(std::uint64_t(65536), 2048u, 3u),  // triple
        std::make_tuple(std::uint64_t(65540), 2048u, 3u),
        std::make_tuple(std::uint64_t(131072), 8192u, 2u),
        std::make_tuple(std::uint64_t(12), 4096u, 2u)));

TEST(StreamWriter, RandomCommitSizesRoundTrip)
{
    soc::Soc s(smallParams());
    sim::Rng rng{99};
    std::vector<std::uint32_t> reference;
    s.start(0, [&](core::DpCore &c) {
        DmsCtl ctl(c, s.dms());
        rt::StreamWriter w(ctl, 0x400000, 0, 2048, 2, 8, 1);
        std::uint32_t value = 0;
        for (int burst = 0; burst < 40; ++burst) {
            std::uint32_t words = 1 + std::uint32_t(rng.below(512));
            std::uint32_t off = w.acquire();
            for (std::uint32_t i = 0; i < words; ++i) {
                c.dmem().store<std::uint32_t>(off + i * 4, value);
                reference.push_back(value++);
            }
            c.dualIssue(words, words);
            w.commit(words * 4);
        }
        w.finish();
    });
    s.run();
    ASSERT_TRUE(s.allFinished());
    for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(s.memory().store().load<std::uint32_t>(0x400000 +
                                                         i * 4),
                  reference[i]) << "word " << i;
    }
}

TEST(Stream, ReaderAndWriterShareACoreAcrossChannels)
{
    // Copy 256 KB through DMEM: read on channel 0, write on channel
    // 1, fully overlapped.
    soc::Soc s(smallParams());
    const std::uint64_t total = 256 << 10;
    for (std::uint64_t i = 0; i < total / 4; ++i)
        s.memory().store().store<std::uint32_t>(
            i * 4, std::uint32_t(i * 2654435761u));

    s.start(0, [&](core::DpCore &c) {
        DmsCtl ctl(c, s.dms());
        rt::StreamReader in(ctl, 0, total, 0, 4096, 2, 0, 0);
        rt::StreamWriter out(ctl, 0x500000, 8192, 4096, 2, 8, 1);
        in.forEach([&](std::uint32_t off, std::uint32_t blen) {
            std::uint32_t o = out.acquire();
            std::vector<std::uint8_t> tmp(blen);
            c.dmem().read(off, tmp.data(), blen);
            c.dmem().write(o, tmp.data(), blen);
            c.dualIssue(blen / 8, blen / 4);
            out.commit(blen);
        });
        out.finish();
    });
    sim::Tick t = s.run();
    ASSERT_TRUE(s.allFinished());
    for (std::uint64_t i = 0; i < total / 4; ++i) {
        ASSERT_EQ(s.memory().store().load<std::uint32_t>(0x500000 +
                                                         i * 4),
                  std::uint32_t(i * 2654435761u));
    }
    // Overlapped R+W of 512 KB total should beat 2 GB/s easily.
    double gbs = 2.0 * total / (double(t) * 1e-12) / 1e9;
    EXPECT_GT(gbs, 2.0);
}

TEST(Stream, HeapBackedStreaming)
{
    // Allocate the source from the runtime heap, stream it, free it.
    soc::Soc s(smallParams());
    rt::Heap heap(1 << 20, 8 << 20, 32);
    std::uint64_t sum = 0;
    s.start(0, [&](core::DpCore &c) {
        mem::Addr buf = heap.alloc(c, 64 << 10);
        for (std::uint32_t i = 0; i < (64 << 10) / 4; ++i)
            s.memory().store().store<std::uint32_t>(buf + i * 4, i);
        DmsCtl ctl(c, s.dms());
        rt::StreamReader in(ctl, buf, 64 << 10, 0, 4096, 2, 0);
        in.forEach([&](std::uint32_t off, std::uint32_t blen) {
            for (std::uint32_t i = 0; i < blen; i += 4)
                sum += c.dmem().load<std::uint32_t>(off + i);
            c.dualIssue(blen / 4, blen / 4);
        });
        heap.free(c, buf);
    });
    s.run();
    ASSERT_TRUE(s.allFinished());
    std::uint64_t n = (64 << 10) / 4;
    EXPECT_EQ(sum, n * (n - 1) / 2);
}

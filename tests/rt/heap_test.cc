/**
 * @file
 * Two-level heap tests (Section 4): alignment, non-overlap, reuse
 * after free, per-core locality of the fast path, huge allocations,
 * and concurrent allocation from many cores.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "rt/heap.hh"
#include "soc/soc.hh"

using namespace dpu;

namespace {

soc::SocParams
smallParams()
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 32 << 20;
    return p;
}

} // namespace

TEST(Heap, BlocksAreLineAlignedAndDisjoint)
{
    soc::Soc s(smallParams());
    rt::Heap heap(1 << 20, 8 << 20, 32);
    std::vector<std::pair<mem::Addr, std::uint64_t>> blocks;
    s.start(0, [&](core::DpCore &c) {
        for (std::uint64_t sz : {16, 24, 64, 100, 1000, 4096, 8192})
            blocks.push_back({heap.alloc(c, sz), sz});
    });
    s.run();
    for (auto &[p, sz] : blocks)
        EXPECT_EQ(p % 64, 0u) << "block at " << p;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        for (std::size_t j = i + 1; j < blocks.size(); ++j) {
            auto [a, sa] = blocks[i];
            auto [b, sb] = blocks[j];
            EXPECT_TRUE(a + sa <= b || b + sb <= a)
                << "overlap " << i << "," << j;
        }
    }
}

TEST(Heap, FreeEnablesReuse)
{
    soc::Soc s(smallParams());
    rt::Heap heap(1 << 20, 4 << 20, 32);
    s.start(0, [&](core::DpCore &c) {
        mem::Addr a = heap.alloc(c, 256);
        heap.free(c, a);
        mem::Addr b = heap.alloc(c, 256);
        EXPECT_EQ(a, b); // LIFO free list reuses immediately
    });
    s.run();
}

TEST(Heap, LiveBytesTracksAllocations)
{
    soc::Soc s(smallParams());
    rt::Heap heap(1 << 20, 4 << 20, 32);
    s.start(0, [&](core::DpCore &c) {
        mem::Addr a = heap.alloc(c, 64);
        mem::Addr b = heap.alloc(c, 64);
        EXPECT_EQ(heap.liveBytes(), 128u);
        heap.free(c, a);
        EXPECT_EQ(heap.liveBytes(), 64u);
        heap.free(c, b);
        EXPECT_EQ(heap.liveBytes(), 0u);
    });
    s.run();
}

TEST(Heap, HugeAllocationsComeFromCentralArena)
{
    soc::Soc s(smallParams());
    rt::Heap heap(1 << 20, 16 << 20, 32);
    s.start(0, [&](core::DpCore &c) {
        mem::Addr a = heap.alloc(c, 1 << 20); // 1 MB
        mem::Addr b = heap.alloc(c, 3 << 20); // 3 MB
        EXPECT_GE(b, a + (1 << 20));
        EXPECT_GE(heap.arenaUsed(), 4u << 20);
    });
    s.run();
}

TEST(Heap, LocalFastPathIsCheaperThanRefill)
{
    soc::Soc s(smallParams());
    rt::Heap heap(1 << 20, 8 << 20, 32);
    sim::Tick first = 0, second = 0;
    s.start(0, [&](core::DpCore &c) {
        sim::Tick t0 = c.now();
        (void)heap.alloc(c, 128); // triggers superblock refill
        first = c.now() - t0;
        t0 = c.now();
        (void)heap.alloc(c, 128); // local free list
        second = c.now() - t0;
    });
    s.run();
    EXPECT_GT(first, second);
}

TEST(Heap, ManyCoresAllocateDisjointBlocks)
{
    soc::Soc s(smallParams());
    rt::Heap heap(1 << 20, 24 << 20, 32);
    std::vector<std::vector<mem::Addr>> per_core(32);
    s.startAll([&](core::DpCore &c) {
        for (int i = 0; i < 64; ++i)
            per_core[c.id()].push_back(heap.alloc(c, 512));
    });
    s.run();
    ASSERT_TRUE(s.allFinished());
    std::map<mem::Addr, int> owner;
    for (unsigned id = 0; id < 32; ++id) {
        for (mem::Addr p : per_core[id]) {
            EXPECT_EQ(owner.count(p), 0u)
                << "block " << p << " double-allocated";
            owner[p] = int(id);
        }
    }
    EXPECT_EQ(owner.size(), 32u * 64u);
}

TEST(Heap, TryAllocReportsExhaustionWithoutDying)
{
    soc::Soc s(smallParams());
    // Four 64 KB superblocks in total.
    rt::Heap heap(1 << 20, 256 * 1024, 32);

    s.start(0, [&](core::DpCore &c) {
        // Drain the arena with huge allocations.
        std::vector<mem::Addr> got;
        for (;;) {
            auto p = heap.tryAlloc(c, 64 * 1024);
            if (!p)
                break;
            got.push_back(*p);
        }
        EXPECT_EQ(got.size(), 4u);
        const std::uint64_t live = heap.liveBytes();

        // Every further path fails cleanly: huge, and small-class
        // (whose refill can't carve a superblock either).
        EXPECT_FALSE(heap.tryAlloc(c, 128 * 1024).has_value());
        EXPECT_FALSE(heap.tryAlloc(c, 32).has_value());
        EXPECT_EQ(heap.liveBytes(), live)
            << "failed allocations must not leak accounting";

        // The failure is recoverable state, not a poisoned heap:
        // freeing keeps working (huge blocks are not recycled, but
        // the free itself must account correctly).
        heap.free(c, got.back());
        EXPECT_EQ(heap.liveBytes(), live - 64 * 1024);
    });
    s.run();
    EXPECT_TRUE(s.allFinished());
}

TEST(Heap, TryAllocMatchesAllocOnTheHappyPath)
{
    soc::Soc s(smallParams());
    rt::Heap heap(1 << 20, 8 << 20, 32);
    s.start(0, [&](core::DpCore &c) {
        auto p = heap.tryAlloc(c, 256);
        ASSERT_TRUE(p.has_value());
        EXPECT_EQ(*p % 64, 0u);
        mem::Addr q = heap.alloc(c, 256);
        EXPECT_NE(*p, q);
        heap.free(c, *p);
        heap.free(c, q);
        EXPECT_EQ(heap.liveBytes(), 0u);
    });
    s.run();
    EXPECT_TRUE(s.allFinished());
}

/**
 * @file
 * Q10.22 fixed-point tests: exactness of representable values,
 * arithmetic identities, accumulator behaviour, and a property sweep
 * comparing against double within the representation's tolerance —
 * the basis for the paper's claim that normalized ML workloads lose
 * negligible accuracy in 10.22 (Section 5).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hh"
#include "util/fixed_point.hh"

using dpu::util::Fx22;
using dpu::util::Fx22Acc;

TEST(Fx22, ExactSmallIntegers)
{
    EXPECT_EQ(Fx22::fromInt(0).toDouble(), 0.0);
    EXPECT_EQ(Fx22::fromInt(1).toDouble(), 1.0);
    EXPECT_EQ(Fx22::fromInt(-3).toDouble(), -3.0);
    EXPECT_EQ(Fx22::fromInt(511).toDouble(), 511.0);
}

TEST(Fx22, Resolution)
{
    // Smallest step is 2^-22.
    Fx22 eps = Fx22::fromRaw(1);
    EXPECT_DOUBLE_EQ(eps.toDouble(), std::ldexp(1.0, -22));
}

TEST(Fx22, AddSubInverse)
{
    Fx22 a = Fx22::fromDouble(1.25);
    Fx22 b = Fx22::fromDouble(-0.75);
    EXPECT_EQ((a + b - b).raw(), a.raw());
    EXPECT_EQ((a - a).raw(), 0);
}

TEST(Fx22, MulExactPowersOfTwo)
{
    Fx22 half = Fx22::fromDouble(0.5);
    Fx22 four = Fx22::fromInt(4);
    EXPECT_DOUBLE_EQ((half * four).toDouble(), 2.0);
    EXPECT_DOUBLE_EQ((half * half).toDouble(), 0.25);
}

TEST(Fx22, DivRoundTrip)
{
    Fx22 a = Fx22::fromDouble(3.5);
    Fx22 b = Fx22::fromDouble(1.75);
    EXPECT_NEAR((a / b).toDouble(), 2.0, 1e-6);
}

TEST(Fx22, AccumulatorAvoidsIntermediateOverflow)
{
    // Summing 1M products of 0.5 * 0.5 = 262144; far beyond what a
    // 32-bit Q10.22 could hold mid-sum if each product were rounded
    // and accumulated in 32 bits.
    Fx22Acc acc;
    Fx22 h = Fx22::fromDouble(0.5);
    for (int i = 0; i < 1000; ++i)
        acc.mulAdd(h, h);
    EXPECT_NEAR(acc.result().toDouble(), 250.0, 1e-4);
}

/** Property sweep: fixed point tracks double within quantization. */
class Fx22PropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(Fx22PropertyTest, TracksDoubleWithinTolerance)
{
    dpu::sim::Rng rng{std::uint64_t(GetParam())};
    // Normalized-data regime: values in [-8, 8) as after the
    // normalization the paper says ML workloads perform.
    for (int i = 0; i < 200; ++i) {
        double a = (rng.uniform() - 0.5) * 16.0;
        double b = (rng.uniform() - 0.5) * 16.0;
        Fx22 fa = Fx22::fromDouble(a);
        Fx22 fb = Fx22::fromDouble(b);
        const double q = std::ldexp(1.0, -22);
        EXPECT_NEAR((fa + fb).toDouble(), a + b, 4 * q);
        EXPECT_NEAR((fa - fb).toDouble(), a - b, 4 * q);
        // Product error: inputs quantized at q, magnitudes < 8.
        EXPECT_NEAR((fa * fb).toDouble(), a * b, 20 * q);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fx22PropertyTest,
                         ::testing::Range(1, 9));

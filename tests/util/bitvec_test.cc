/**
 * @file
 * Bit-vector tests (the DMS scatter/gather masks and FILT outputs).
 */

#include <gtest/gtest.h>

#include "sim/rng.hh"
#include "util/bitvec.hh"

using dpu::util::BitVec;

TEST(BitVec, SetTestClear)
{
    BitVec bv(130);
    EXPECT_EQ(bv.size(), 130u);
    EXPECT_FALSE(bv.test(0));
    bv.set(0);
    bv.set(64);
    bv.set(129);
    EXPECT_TRUE(bv.test(0));
    EXPECT_TRUE(bv.test(64));
    EXPECT_TRUE(bv.test(129));
    EXPECT_FALSE(bv.test(63));
    bv.set(64, false);
    EXPECT_FALSE(bv.test(64));
}

TEST(BitVec, CountMatchesSetBits)
{
    BitVec bv(1000);
    dpu::sim::Rng rng(3);
    std::size_t expected = 0;
    for (std::size_t i = 0; i < 1000; ++i) {
        if (rng.uniform() < 0.3) {
            bv.set(i);
            ++expected;
        }
    }
    EXPECT_EQ(bv.count(), expected);
}

TEST(BitVec, ClearZeroesEverything)
{
    BitVec bv(256);
    for (std::size_t i = 0; i < 256; i += 3)
        bv.set(i);
    bv.clear();
    EXPECT_EQ(bv.count(), 0u);
}

TEST(BitVec, ByteSizeRoundsToWords)
{
    EXPECT_EQ(BitVec(1).byteSize(), 8u);
    EXPECT_EQ(BitVec(64).byteSize(), 8u);
    EXPECT_EQ(BitVec(65).byteSize(), 16u);
}

TEST(BitVec, DensePatternFromPaper)
{
    // Figure 12 uses a repeating dense 0xF7 mask (7 of 8 bits set)
    // and a sparse 0x13 mask (3 of 8 bits set).
    BitVec dense(64);
    for (std::size_t i = 0; i < 64; ++i)
        if ((0xF7 >> (i % 8)) & 1)
            dense.set(i);
    EXPECT_EQ(dense.count(), 56u);

    BitVec sparse(64);
    for (std::size_t i = 0; i < 64; ++i)
        if ((0x13 >> (i % 8)) & 1)
            sparse.set(i);
    EXPECT_EQ(sparse.count(), 24u);
}

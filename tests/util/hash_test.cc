/**
 * @file
 * Vector tests for CRC32 (against the published IEEE 802.3 check
 * value) and MurmurHash64A (self-consistency and avalanche sanity),
 * plus distribution checks the DMS partitioner depends on.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "sim/rng.hh"
#include "util/crc32.hh"
#include "util/murmur64.hh"

using namespace dpu::util;

TEST(Crc32, StandardCheckValue)
{
    // The canonical CRC-32 check: crc32("123456789") = 0xCBF43926.
    const char *s = "123456789";
    EXPECT_EQ(crc32(s, 9), 0xcbf43926u);
}

TEST(Crc32, EmptyIsZero)
{
    EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    std::vector<std::uint8_t> buf(1024);
    dpu::sim::Rng rng(42);
    for (auto &b : buf)
        b = std::uint8_t(rng.next());

    std::uint32_t whole = crc32(buf.data(), buf.size());
    std::uint32_t inc = 0;
    inc = crc32Update(inc, buf.data(), 100);
    inc = crc32Update(inc, buf.data() + 100, 924);
    EXPECT_EQ(whole, inc);
}

TEST(Crc32, KeyHashMatchesBufferHash)
{
    std::uint32_t key = 0xdeadbeef;
    EXPECT_EQ(crc32Key(key), crc32(&key, 4));
}

TEST(Crc32, RadixBitsAreBalanced)
{
    // The DMS radix partitioner takes low bits of the CRC of the key
    // (Section 3.1). Over sequential keys the 32 buckets should be
    // near-uniform, unlike taking low bits of the raw key.
    std::array<int, 32> buckets{};
    const int n = 32000;
    for (int i = 0; i < n; ++i)
        ++buckets[crc32Key(std::uint32_t(i)) & 31];
    for (int b : buckets) {
        EXPECT_GT(b, n / 32 * 7 / 10);
        EXPECT_LT(b, n / 32 * 13 / 10);
    }
}

TEST(Murmur64, DeterministicAndLengthSensitive)
{
    std::uint64_t k = 0x0123456789abcdefull;
    EXPECT_EQ(murmur64(&k, 8), murmur64(&k, 8));
    EXPECT_NE(murmur64(&k, 8), murmur64(&k, 7));
}

TEST(Murmur64, AvalancheOnSingleBitFlip)
{
    dpu::sim::Rng rng(7);
    for (int trial = 0; trial < 64; ++trial) {
        std::uint64_t a = rng.next();
        std::uint64_t b = a ^ (1ull << (trial % 64));
        std::uint64_t ha = murmur64Key(a);
        std::uint64_t hb = murmur64Key(b);
        int flipped = __builtin_popcountll(ha ^ hb);
        EXPECT_GT(flipped, 10);
        EXPECT_LT(flipped, 54);
    }
}

TEST(Murmur64, MulCountMatchesAlgorithm)
{
    // 8-byte key: len*m, (k*m, k*m, h*m), final h*m = 5 multiplies.
    EXPECT_EQ(murmur64MulCount(8), 5u);
    // 12-byte key adds the tail h*m.
    EXPECT_EQ(murmur64MulCount(12), 6u);
    EXPECT_EQ(murmur64MulCount(0), 2u);
}

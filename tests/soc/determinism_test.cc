/**
 * @file
 * Determinism: the simulator must be a pure function of its inputs.
 * Two runs of the same scenario in one process must produce
 * byte-identical stat dumps, identical final tick counts, and
 * identical stat snapshots.
 *
 * The properties this relies on (and that this test guards):
 *  - the event queue breaks same-tick ties by insertion sequence
 *    number, never by heap order or pointer value;
 *  - no simulator state lives in unordered containers whose
 *    iteration order could vary between runs (StatGroup uses
 *    std::map; the DMAC partition queue is a deque);
 *  - kernels take no input from wall-clock time or ASLR'd addresses.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "scenarios.hh"

using namespace dpu;

namespace {

/** Run a full-SoC workload twice; all observables must match. */
template <typename Scenario>
void
expectRepeatable(Scenario &&run)
{
    sim::StatsSnapshot first = run();
    sim::StatsSnapshot second = run();
    ASSERT_FALSE(first.counters.empty());

    EXPECT_EQ(first.counters.at("sim.finalTick"),
              second.counters.at("sim.finalTick"));
    EXPECT_TRUE(first == second)
        << sim::formatDiffs(sim::diffSnapshots(first, second,
                                               {0.0, 0.0, {}}));
}

} // namespace

TEST(Determinism, Listing1RunsAreIdentical)
{
    expectRepeatable([] { return test::runListing1Scenario(); });
}

TEST(Determinism, HashPartitionRunsAreIdentical)
{
    expectRepeatable([] { return test::runPartitionScenario(); });
}

TEST(Determinism, AtePingPongRunsAreIdentical)
{
    expectRepeatable([] { return test::runAtePingPongScenario(); });
}

TEST(Determinism, MbcStormRunsAreIdentical)
{
    expectRepeatable([] { return test::runMbcStormScenario(); });
}

TEST(Determinism, ServingRunsAreIdentical)
{
    // The full offload path — admission, dispatch, kernels, acks,
    // timeout reaping — must be a pure function of the request
    // stream; identical stat snapshots twice in one process.
    expectRepeatable([] { return test::runServingScenario(); });
}

TEST(Determinism, StatDumpIsByteIdentical)
{
    // The human-readable dump must also be stable — it's what gets
    // pasted into bug reports and compared across machines.
    auto dump = [] {
        soc::SocParams p = soc::dpu40nm();
        p.ddrBytes = 8 << 20;
        soc::Soc s(p);
        for (std::uint32_t i = 0; i < 4096; ++i)
            s.memory().store().store<std::uint32_t>(i * 4, i ^ 0x5a);
        s.start(0, [&](core::DpCore &c) {
            rt::DmsCtl ctl(c, s.dms());
            auto rd = ctl.setupDdrToDmem(1024, 4, 0, 0, 0);
            ctl.push(rd);
            ctl.wfe(0);
            std::uint64_t sum = 0;
            for (std::uint32_t i = 0; i < 1024; ++i)
                sum += c.dmem().load<std::uint32_t>(i * 4);
            c.dualIssue(1024, 1024);
            ctl.clearEvent(0);
            c.dmem().store<std::uint64_t>(8192, sum);
        });
        s.run();
        std::ostringstream os;
        os << s.now() << "\n";
        s.dumpStats(os);
        return os.str();
    };
    std::string a = dump();
    std::string b = dump();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

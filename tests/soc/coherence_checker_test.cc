/**
 * @file
 * Coherence-checker tests (the Section 4 debugging tool): stale
 * reads and conflicting writes across cores are flagged; the
 * sanctioned idioms — dpu_serialized RPCs through an owner core and
 * explicit flush/invalidate pairs — run clean.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "rt/dms_ctl.hh"
#include "rt/serialized.hh"
#include "sim/trace.hh"
#include "soc/coherence_checker.hh"
#include "soc/soc.hh"

using namespace dpu;

namespace {

soc::SocParams
smallParams()
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 8 << 20;
    return p;
}

} // namespace

TEST(CoherenceChecker, FlagsStaleReadAcrossCores)
{
    soc::Soc s(smallParams());
    soc::CoherenceChecker checker(s);

    bool writer_done = false;
    s.start(0, [&](core::DpCore &c) {
        c.store<std::uint32_t>(0x4000, 42); // dirty in core 0's L1
        writer_done = true;
        s.core(1).wake(c.now());
    });
    s.start(1, [&](core::DpCore &c) {
        c.blockUntil([&] { return writer_done; });
        (void)c.load<std::uint32_t>(0x4000); // stale read!
    });
    s.run();
    ASSERT_TRUE(s.allFinished());
    ASSERT_GE(checker.staleReads(), 1u);
    const auto &v = checker.violations().back();
    EXPECT_EQ(v.line, 0x4000u);
    EXPECT_EQ(v.accessor, 1u);
    EXPECT_EQ(v.dirtyOwner, 0u);
}

TEST(CoherenceChecker, FlagsConflictingWrites)
{
    soc::Soc s(smallParams());
    soc::CoherenceChecker checker(s);

    bool first_done = false;
    s.start(2, [&](core::DpCore &c) {
        c.store<std::uint32_t>(0x8000, 1);
        first_done = true;
        s.core(3).wake(c.now());
    });
    s.start(3, [&](core::DpCore &c) {
        c.blockUntil([&] { return first_done; });
        c.store<std::uint32_t>(0x8004, 2); // same line, both dirty
    });
    s.run();
    ASSERT_TRUE(s.allFinished());
    EXPECT_GE(checker.conflictingWrites(), 1u);
}

TEST(CoherenceChecker, FlushInvalidatePairRunsClean)
{
    soc::Soc s(smallParams());
    soc::CoherenceChecker checker(s);

    bool flushed = false;
    s.start(0, [&](core::DpCore &c) {
        c.store<std::uint32_t>(0x4000, 42);
        c.cacheFlush(0x4000, 4); // through L1 + L2 to DDR
        flushed = true;
        s.core(1).wake(c.now());
    });
    s.start(1, [&](core::DpCore &c) {
        c.blockUntil([&] { return flushed; });
        c.cacheInvalidate(0x4000, 4);
        EXPECT_EQ(c.load<std::uint32_t>(0x4000), 42u);
    });
    s.run();
    ASSERT_TRUE(s.allFinished());
    EXPECT_EQ(checker.violations().size(), 0u);
}

TEST(CoherenceChecker, OwnerPinnedAteAccessIsExempt)
{
    // The paper's idiom: pin the structure to one owner; every
    // manipulation goes through ATE RPCs in the owner's pipeline.
    soc::Soc s(smallParams());
    soc::CoherenceChecker checker(s);

    const mem::Addr shared = 0xA000;
    const unsigned owner = 4;
    bool idle = false;
    s.start(owner, [&](core::DpCore &c) {
        c.blockUntil([&] { return idle; });
    });
    s.start(0, [&](core::DpCore &c) {
        s.ate().remoteStore(c, owner, shared, 5, 8);
        EXPECT_EQ(s.ate().remoteLoad(c, owner, shared, 8), 5u);
        s.ate().fetchAdd(c, owner, shared, 2, 8);
        EXPECT_EQ(s.ate().remoteLoad(c, owner, shared, 8), 7u);
        idle = true;
        s.core(owner).wake(c.now());
    });
    s.run();
    ASSERT_TRUE(s.allFinished());
    EXPECT_EQ(checker.violations().size(), 0u);
}

TEST(CoherenceChecker, FlagsStaleDmsReadAndTracesIt)
{
    // The DMS bypasses the caches: a remote DMEM->DDR descriptor
    // overwrites a line core 1 still holds in L1, and core 1 then
    // re-reads it without invalidating. The checker must flag the
    // hazard AND emit a trace instant for it.
    sim::tracer().arm(1u << 14);

    soc::Soc s(smallParams());
    soc::CoherenceChecker checker(s);

    const mem::Addr shared = 0x6000; // line-aligned DDR address
    s.memory().store().store<std::uint32_t>(shared, 1);

    bool dms_done = false;
    s.start(1, [&](core::DpCore &c) {
        EXPECT_EQ(c.load<std::uint32_t>(shared), 1u); // caches line
        c.blockUntil([&] { return dms_done; });
        // Stale: DDR now holds 2, but the cached copy still reads 1.
        EXPECT_EQ(c.load<std::uint32_t>(shared), 1u);
    });
    s.start(0, [&](core::DpCore &c) {
        rt::DmsCtl ctl(c, s.dms());
        c.dmem().store<std::uint32_t>(0, 2);
        auto wr = ctl.setupDmemToDdr(1, 4, 0, shared, 0, false);
        ctl.push(wr);
        ctl.wfe(0);
        ctl.clearEvent(0);
        dms_done = true;
        s.core(1).wake(c.now());
    });
    s.run();
    ASSERT_TRUE(s.allFinished());
    EXPECT_EQ(s.memory().store().load<std::uint32_t>(shared), 2u);

    ASSERT_EQ(checker.staleDmsReads(), 1u);
    const auto &v = checker.violations().back();
    EXPECT_TRUE(v.viaDms);
    EXPECT_EQ(v.line, shared);
    EXPECT_EQ(v.accessor, 1u);
    EXPECT_FALSE(v.accessWasWrite);

    std::ostringstream os;
    sim::tracer().exportJson(os);
    sim::tracer().disarm();
    sim::tracer().clear();
    if (DPU_TRACING) {
        EXPECT_NE(os.str().find("\"name\":\"staleDmsRead\""),
                  std::string::npos)
            << "hazard did not show up in the trace";
    }
}

TEST(CoherenceChecker, InvalidateAfterDmsWriteRunsClean)
{
    // The sanctioned pattern: invalidate before re-reading a line
    // the DMS rewrote. The refetch observes fresh data and must not
    // be flagged.
    soc::Soc s(smallParams());
    soc::CoherenceChecker checker(s);

    const mem::Addr shared = 0x7000;
    s.memory().store().store<std::uint32_t>(shared, 1);

    bool dms_done = false;
    s.start(1, [&](core::DpCore &c) {
        EXPECT_EQ(c.load<std::uint32_t>(shared), 1u);
        c.blockUntil([&] { return dms_done; });
        c.cacheInvalidate(shared, 4);
        EXPECT_EQ(c.load<std::uint32_t>(shared), 2u);
    });
    s.start(0, [&](core::DpCore &c) {
        rt::DmsCtl ctl(c, s.dms());
        c.dmem().store<std::uint32_t>(0, 2);
        auto wr = ctl.setupDmemToDdr(1, 4, 0, shared, 0, false);
        ctl.push(wr);
        ctl.wfe(0);
        ctl.clearEvent(0);
        dms_done = true;
        s.core(1).wake(c.now());
    });
    s.run();
    ASSERT_TRUE(s.allFinished());
    EXPECT_EQ(checker.staleDmsReads(), 0u);
    EXPECT_EQ(checker.violations().size(), 0u);
}

TEST(CoherenceChecker, DpuSerializedRunsClean)
{
    soc::Soc s(smallParams());
    soc::CoherenceChecker checker(s);

    const mem::Addr arg = 0xC000;
    const unsigned owner = 6;
    bool stop = false;
    std::uint64_t seen = 0;
    s.start(owner, [&](core::DpCore &c) {
        c.blockUntil([&] { return stop; });
    });
    s.start(0, [&](core::DpCore &c) {
        c.store<std::uint64_t>(arg, 99);
        rt::dpuSerialized(
            c, s.ate(), owner,
            [&](core::DpCore &rc) {
                seen = rc.load<std::uint64_t>(arg);
                rc.store<std::uint64_t>(arg + 8, seen + 1);
            },
            {{arg, 8}}, {{arg + 8, 8}});
        EXPECT_EQ(c.load<std::uint64_t>(arg + 8), 100u);
        stop = true;
        s.core(owner).wake(c.now());
    });
    s.run();
    ASSERT_TRUE(s.allFinished());
    EXPECT_EQ(seen, 99u);
    EXPECT_EQ(checker.violations().size(), 0u);
}

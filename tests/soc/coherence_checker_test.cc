/**
 * @file
 * Coherence-checker tests (the Section 4 debugging tool): stale
 * reads and conflicting writes across cores are flagged; the
 * sanctioned idioms — dpu_serialized RPCs through an owner core and
 * explicit flush/invalidate pairs — run clean.
 */

#include <gtest/gtest.h>

#include "rt/serialized.hh"
#include "soc/coherence_checker.hh"
#include "soc/soc.hh"

using namespace dpu;

namespace {

soc::SocParams
smallParams()
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 8 << 20;
    return p;
}

} // namespace

TEST(CoherenceChecker, FlagsStaleReadAcrossCores)
{
    soc::Soc s(smallParams());
    soc::CoherenceChecker checker(s);

    bool writer_done = false;
    s.start(0, [&](core::DpCore &c) {
        c.store<std::uint32_t>(0x4000, 42); // dirty in core 0's L1
        writer_done = true;
        s.core(1).wake(c.now());
    });
    s.start(1, [&](core::DpCore &c) {
        c.blockUntil([&] { return writer_done; });
        (void)c.load<std::uint32_t>(0x4000); // stale read!
    });
    s.run();
    ASSERT_TRUE(s.allFinished());
    ASSERT_GE(checker.staleReads(), 1u);
    const auto &v = checker.violations().back();
    EXPECT_EQ(v.line, 0x4000u);
    EXPECT_EQ(v.accessor, 1u);
    EXPECT_EQ(v.dirtyOwner, 0u);
}

TEST(CoherenceChecker, FlagsConflictingWrites)
{
    soc::Soc s(smallParams());
    soc::CoherenceChecker checker(s);

    bool first_done = false;
    s.start(2, [&](core::DpCore &c) {
        c.store<std::uint32_t>(0x8000, 1);
        first_done = true;
        s.core(3).wake(c.now());
    });
    s.start(3, [&](core::DpCore &c) {
        c.blockUntil([&] { return first_done; });
        c.store<std::uint32_t>(0x8004, 2); // same line, both dirty
    });
    s.run();
    ASSERT_TRUE(s.allFinished());
    EXPECT_GE(checker.conflictingWrites(), 1u);
}

TEST(CoherenceChecker, FlushInvalidatePairRunsClean)
{
    soc::Soc s(smallParams());
    soc::CoherenceChecker checker(s);

    bool flushed = false;
    s.start(0, [&](core::DpCore &c) {
        c.store<std::uint32_t>(0x4000, 42);
        c.cacheFlush(0x4000, 4); // through L1 + L2 to DDR
        flushed = true;
        s.core(1).wake(c.now());
    });
    s.start(1, [&](core::DpCore &c) {
        c.blockUntil([&] { return flushed; });
        c.cacheInvalidate(0x4000, 4);
        EXPECT_EQ(c.load<std::uint32_t>(0x4000), 42u);
    });
    s.run();
    ASSERT_TRUE(s.allFinished());
    EXPECT_EQ(checker.violations().size(), 0u);
}

TEST(CoherenceChecker, OwnerPinnedAteAccessIsExempt)
{
    // The paper's idiom: pin the structure to one owner; every
    // manipulation goes through ATE RPCs in the owner's pipeline.
    soc::Soc s(smallParams());
    soc::CoherenceChecker checker(s);

    const mem::Addr shared = 0xA000;
    const unsigned owner = 4;
    bool idle = false;
    s.start(owner, [&](core::DpCore &c) {
        c.blockUntil([&] { return idle; });
    });
    s.start(0, [&](core::DpCore &c) {
        s.ate().remoteStore(c, owner, shared, 5, 8);
        EXPECT_EQ(s.ate().remoteLoad(c, owner, shared, 8), 5u);
        s.ate().fetchAdd(c, owner, shared, 2, 8);
        EXPECT_EQ(s.ate().remoteLoad(c, owner, shared, 8), 7u);
        idle = true;
        s.core(owner).wake(c.now());
    });
    s.run();
    ASSERT_TRUE(s.allFinished());
    EXPECT_EQ(checker.violations().size(), 0u);
}

TEST(CoherenceChecker, DpuSerializedRunsClean)
{
    soc::Soc s(smallParams());
    soc::CoherenceChecker checker(s);

    const mem::Addr arg = 0xC000;
    const unsigned owner = 6;
    bool stop = false;
    std::uint64_t seen = 0;
    s.start(owner, [&](core::DpCore &c) {
        c.blockUntil([&] { return stop; });
    });
    s.start(0, [&](core::DpCore &c) {
        c.store<std::uint64_t>(arg, 99);
        rt::dpuSerialized(
            c, s.ate(), owner,
            [&](core::DpCore &rc) {
                seen = rc.load<std::uint64_t>(arg);
                rc.store<std::uint64_t>(arg + 8, seen + 1);
            },
            {{arg, 8}}, {{arg + 8, 8}});
        EXPECT_EQ(c.load<std::uint64_t>(arg + 8), 100u);
        stop = true;
        s.core(owner).wake(c.now());
    });
    s.run();
    ASSERT_TRUE(s.allFinished());
    EXPECT_EQ(seen, 99u);
    EXPECT_EQ(checker.violations().size(), 0u);
}

/**
 * @file
 * Canonical whole-SoC scenarios shared by the golden-stats and
 * determinism tests. Each runner builds a fresh chip, executes one
 * paper workload end to end, and freezes every live StatGroup into
 * a snapshot (plus the final simulated tick as the pseudo-counter
 * "sim.finalTick"). The workloads are pure integer simulation with
 * fixed seeds, so a given binary must reproduce the snapshots
 * bit-for-bit — which is exactly what the golden files check.
 */

#ifndef DPU_TESTS_SOC_SCENARIOS_HH
#define DPU_TESTS_SOC_SCENARIOS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "host/offload.hh"
#include "rt/dms_ctl.hh"
#include "rt/partition.hh"
#include "sim/rng.hh"
#include "sim/stats_registry.hh"
#include "soc/host_a9.hh"
#include "soc/soc.hh"
#include "util/crc32.hh"

namespace dpu::test {

/** Freeze all stats of @p s plus the final tick. */
inline sim::StatsSnapshot
freezeStats(soc::Soc &s)
{
    sim::StatsSnapshot snap = sim::StatsRegistry::instance().snapshot();
    snap.counters["sim.finalTick"] = s.now();
    return snap;
}

/**
 * Listing 1, scaled to 2 MB: stream DDR through two ping-pong DMEM
 * buffers with three descriptors, consuming with wfe/clear_event.
 */
inline sim::StatsSnapshot
runListing1Scenario(const dms::DmsParams *dms_override = nullptr)
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 8 << 20;
    if (dms_override)
        p.dms = *dms_override;
    soc::Soc s(p);

    const std::uint32_t total = 2 << 20;
    std::uint64_t expect = 0;
    for (std::uint32_t i = 0; i < total / 4; ++i) {
        std::uint32_t v = i * 0x9e3779b9u;
        s.memory().store().store<std::uint32_t>(i * 4, v);
        expect += v;
    }

    std::uint64_t sum = 0;
    s.start(0, [&](core::DpCore &c) {
        rt::DmsCtl ctl(c, s.dms());
        auto d0 = ctl.setupDdrToDmem(256, 4, 0, 0, 0);
        auto d1 = ctl.setupDdrToDmem(256, 4, 0, 1024, 1);
        auto loop = ctl.setupLoop(d0, 1023); // 2048 buffers total
        ctl.push(d0);
        ctl.push(d1);
        ctl.push(loop);

        unsigned buf = 0;
        for (std::uint32_t count = 0; count < 2048; ++count) {
            ctl.wfe(buf);
            std::uint32_t base = buf ? 1024u : 0u;
            for (std::uint32_t i = 0; i < 256; ++i)
                sum += c.dmem().load<std::uint32_t>(base + i * 4);
            c.dualIssue(256, 256);
            ctl.clearEvent(buf);
            buf = 1 - buf;
        }
    });
    s.run();
    if (!s.allFinished() || sum != expect)
        return {}; // empty snapshot == scenario self-check failed
    return freezeStats(s);
}

/** 32-way CRC-hash partition of an 8192x2 table, all cores consume. */
inline sim::StatsSnapshot
runPartitionScenario()
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 32 << 20;
    soc::Soc s(p);

    sim::Rng rng{12345};
    const std::uint32_t n_rows = 8192;
    const unsigned n_cols = 2;
    const std::uint32_t stride = n_rows * 4;
    const std::uint16_t buf_bytes = 1024 + 4;
    for (std::uint32_t r = 0; r < n_rows; ++r) {
        s.memory().store().store<std::uint32_t>(
            0x100000 + r * 4, std::uint32_t(rng.next()));
        s.memory().store().store<std::uint32_t>(
            0x100000 + stride + r * 4, r);
    }

    std::vector<int> delivered(n_rows, 0);
    std::uint64_t wrong_core = 0;
    for (unsigned id = 0; id < 32; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            rt::DmsCtl ctl(c, s.dms());
            if (id == 0) {
                rt::PartitionJob job;
                job.table = 0x100000;
                job.nRows = n_rows;
                job.nCols = n_cols;
                job.colWidth = 4;
                job.colStride = stride;
                job.chunkRows = 128;
                job.dstBufBytes = buf_bytes;
                rt::runPartition(ctl, job);
            }
            const unsigned tuple = n_cols * 4;
            rt::consumePartition(
                ctl, 0, buf_bytes, 2, 16,
                [&](std::uint32_t off, std::uint32_t rows) {
                    for (std::uint32_t i = 0; i < rows; ++i) {
                        std::uint32_t key =
                            c.dmem().load<std::uint32_t>(off +
                                                         i * tuple);
                        if ((util::crc32Key(key) & 31) != id)
                            ++wrong_core;
                        std::uint32_t tag =
                            c.dmem().load<std::uint32_t>(
                                off + i * tuple + 4);
                        if (tag < n_rows)
                            ++delivered[tag];
                    }
                    c.dualIssue(rows * n_cols, rows * n_cols);
                });
            if (id == 0) {
                ctl.wfe(30);
                ctl.clearEvent(30);
            }
        });
    }
    s.run();
    if (!s.allFinished() || wrong_core != 0)
        return {};
    for (std::uint32_t r = 0; r < n_rows; ++r)
        if (delivered[r] != 1)
            return {};
    return freezeStats(s);
}

/**
 * ATE ping-pong: cores 0 and 31 fetch-add each other's DMEM counter
 * 256 times (near+far hops), then core 0 fires 8 software RPCs.
 */
inline sim::StatsSnapshot
runAtePingPongScenario()
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 8 << 20;
    soc::Soc s(p);

    bool stop = false;
    s.start(31, [&](core::DpCore &c) {
        for (int i = 0; i < 256; ++i)
            s.ate().fetchAdd(c, 0, mem::dmemAddr(0, 0), 1, 8);
        c.blockUntil([&] { return stop; });
    });
    s.start(0, [&](core::DpCore &c) {
        for (int i = 0; i < 256; ++i)
            s.ate().fetchAdd(c, 31, mem::dmemAddr(31, 0), 1, 8);
        for (int i = 0; i < 8; ++i)
            s.ate().swRpc(c, 31, [](core::DpCore &rc) {
                rc.alu(16);
            });
        stop = true;
        s.core(31).wake(c.now());
    });
    s.run();
    if (!s.allFinished())
        return {};
    if (s.core(0).dmem().load<std::uint64_t>(0) != 256 ||
        s.core(31).dmem().load<std::uint64_t>(0) != 256)
        return {};
    return freezeStats(s);
}

/**
 * MBC storm: all 32 dpCores fire staggered bursts of messages at
 * the A9 mailbox concurrently; the host must drain every one
 * exactly once. The stagger strides are coprime with the core count
 * so arrival order interleaves heavily instead of batching.
 */
inline sim::StatsSnapshot
runMbcStormScenario()
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 8 << 20;
    soc::Soc s(p);
    soc::HostA9 a9(s.eventQueue(), s.mbc());

    constexpr unsigned per_core = 8;
    const unsigned n_cores = s.nCores();
    for (unsigned id = 0; id < n_cores; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            for (unsigned k = 0; k < per_core; ++k) {
                c.sleepCycles(1 + (id * 7 + k * 13) % 97);
                s.mbc().send(c, s.mbc().a9Box(),
                             (std::uint64_t(id) << 32) | k);
            }
        });
    }

    std::vector<unsigned> seen(n_cores * per_core, 0);
    bool stray = false;
    a9.start([&](soc::HostA9 &host) {
        for (unsigned n = 0; n < n_cores * per_core; ++n) {
            const std::uint64_t msg = host.recv();
            const unsigned id = unsigned(msg >> 32);
            const unsigned k = unsigned(msg & 0xffffffffu);
            if (id >= n_cores || k >= per_core)
                stray = true;
            else
                ++seen[id * per_core + k];
        }
    });
    s.run();

    if (!s.allFinished() || !a9.finished() || stray)
        return {};
    for (unsigned slot : seen)
        if (slot != 1)
            return {};
    if (s.mbc().depth(s.mbc().a9Box()) != 0)
        return {};
    return freezeStats(s);
}

/**
 * Offload serving: a fixed open-loop trickle of small mixed-app
 * requests through the host scheduler, including one injected
 * never-completing job whose group must be reaped (timeout +
 * quarantine) while the rest of the load keeps draining. One core
 * (the wedged lane) never finishes by construction.
 */
inline sim::StatsSnapshot
runServingScenario()
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 64 << 20;
    soc::Soc s(p);
    soc::HostA9 a9(s.eventQueue(), s.mbc());
    host::OffloadParams op;
    host::OffloadScheduler sched(s, a9, op);

    struct Req
    {
        const char *app;
        std::initializer_list<
            std::pair<std::string_view, std::string_view>>
            opts;
    };
    static const Req load[] = {
        {"filter", {{"rowsPerCore", "4096"}}},
        {"groupby-low", {{"nRows", "16384"}, {"ndv", "128"}}},
        {"hll-crc",
         {{"nElements", "8192"}, {"cardinality", "2048"},
          {"pBits", "10"}}},
        {"json", {{"nRecords", "512"}}},
        {"svm", {{"nTest", "2048"}, {"dims", "32"}}},
        {"simsearch",
         {{"nDocs", "512"}, {"vocab", "512"}, {"nQueries", "1"}}},
        {"filter", {{"rowsPerCore", "2048"}}},
        {"groupby-low", {{"nRows", "8192"}, {"ndv", "64"}}},
        {"json", {{"nRecords", "256"}}},
        {"hll-crc",
         {{"nElements", "4096"}, {"cardinality", "1024"},
          {"pBits", "10"}}},
        {"filter", {{"rowsPerCore", "8192"}}},
        {"groupby-low", {{"nRows", "16384"}, {"ndv", "256"}}},
    };
    const sim::Tick gap = sim::Tick(150e6); // 150 us
    unsigned i = 0;
    for (const Req &r : load) {
        const apps::AppSpec *spec = apps::findApp(r.app);
        if (!spec)
            return {};
        apps::ConfigHandle cfg = spec->makeConfig();
        for (const auto &[k, v] : r.opts)
            if (!spec->set(cfg, k, v))
                return {};
        host::JobRequest req;
        req.app = r.app;
        req.cfg = std::move(cfg);
        req.seed = 0x5eed0000 + i;
        sched.enqueueAt(++i * gap, std::move(req));
    }

    // The injected fault: lane 0 never sets its completion event.
    host::JobRequest wedged;
    wedged.timeout = sim::Tick(2e9); // 2 ms, well under the drain
    wedged.makeJob = [](const apps::ServingContext &) {
        apps::ServingJob job;
        job.stage = [] {};
        job.lane = [](core::DpCore &c, unsigned lane) {
            if (lane == 0)
                c.blockUntil([] { return false; });
            c.alu(16);
        };
        return job;
    };
    sched.enqueueAt(6 * gap + 1, std::move(wedged));

    sched.start();
    s.run();

    const host::ServingSummary sum = sched.summary();
    if (sum.completed != std::size(load) || sum.timedOut != 1 ||
        sum.rejected != 0 || sum.validationFailed != 0 ||
        sum.wedgedGroups != 1)
        return {};
    // Exactly the wedged lane must still be parked.
    if (s.unfinishedCores().size() != 1)
        return {};
    return freezeStats(s);
}

} // namespace dpu::test

#endif // DPU_TESTS_SOC_SCENARIOS_HH

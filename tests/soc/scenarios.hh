/**
 * @file
 * Canonical whole-SoC scenarios shared by the golden-stats and
 * determinism tests. Each runner builds a fresh chip, executes one
 * paper workload end to end, and freezes every live StatGroup into
 * a snapshot (plus the final simulated tick as the pseudo-counter
 * "sim.finalTick"). The workloads are pure integer simulation with
 * fixed seeds, so a given binary must reproduce the snapshots
 * bit-for-bit — which is exactly what the golden files check.
 */

#ifndef DPU_TESTS_SOC_SCENARIOS_HH
#define DPU_TESTS_SOC_SCENARIOS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "rt/dms_ctl.hh"
#include "rt/partition.hh"
#include "sim/rng.hh"
#include "sim/stats_registry.hh"
#include "soc/soc.hh"
#include "util/crc32.hh"

namespace dpu::test {

/** Freeze all stats of @p s plus the final tick. */
inline sim::StatsSnapshot
freezeStats(soc::Soc &s)
{
    sim::StatsSnapshot snap = sim::StatsRegistry::instance().snapshot();
    snap.counters["sim.finalTick"] = s.now();
    return snap;
}

/**
 * Listing 1, scaled to 2 MB: stream DDR through two ping-pong DMEM
 * buffers with three descriptors, consuming with wfe/clear_event.
 */
inline sim::StatsSnapshot
runListing1Scenario(const dms::DmsParams *dms_override = nullptr)
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 8 << 20;
    if (dms_override)
        p.dms = *dms_override;
    soc::Soc s(p);

    const std::uint32_t total = 2 << 20;
    std::uint64_t expect = 0;
    for (std::uint32_t i = 0; i < total / 4; ++i) {
        std::uint32_t v = i * 0x9e3779b9u;
        s.memory().store().store<std::uint32_t>(i * 4, v);
        expect += v;
    }

    std::uint64_t sum = 0;
    s.start(0, [&](core::DpCore &c) {
        rt::DmsCtl ctl(c, s.dms());
        auto d0 = ctl.setupDdrToDmem(256, 4, 0, 0, 0);
        auto d1 = ctl.setupDdrToDmem(256, 4, 0, 1024, 1);
        auto loop = ctl.setupLoop(d0, 1023); // 2048 buffers total
        ctl.push(d0);
        ctl.push(d1);
        ctl.push(loop);

        unsigned buf = 0;
        for (std::uint32_t count = 0; count < 2048; ++count) {
            ctl.wfe(buf);
            std::uint32_t base = buf ? 1024u : 0u;
            for (std::uint32_t i = 0; i < 256; ++i)
                sum += c.dmem().load<std::uint32_t>(base + i * 4);
            c.dualIssue(256, 256);
            ctl.clearEvent(buf);
            buf = 1 - buf;
        }
    });
    s.run();
    if (!s.allFinished() || sum != expect)
        return {}; // empty snapshot == scenario self-check failed
    return freezeStats(s);
}

/** 32-way CRC-hash partition of an 8192x2 table, all cores consume. */
inline sim::StatsSnapshot
runPartitionScenario()
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 32 << 20;
    soc::Soc s(p);

    sim::Rng rng{12345};
    const std::uint32_t n_rows = 8192;
    const unsigned n_cols = 2;
    const std::uint32_t stride = n_rows * 4;
    const std::uint16_t buf_bytes = 1024 + 4;
    for (std::uint32_t r = 0; r < n_rows; ++r) {
        s.memory().store().store<std::uint32_t>(
            0x100000 + r * 4, std::uint32_t(rng.next()));
        s.memory().store().store<std::uint32_t>(
            0x100000 + stride + r * 4, r);
    }

    std::vector<int> delivered(n_rows, 0);
    std::uint64_t wrong_core = 0;
    for (unsigned id = 0; id < 32; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            rt::DmsCtl ctl(c, s.dms());
            if (id == 0) {
                rt::PartitionJob job;
                job.table = 0x100000;
                job.nRows = n_rows;
                job.nCols = n_cols;
                job.colWidth = 4;
                job.colStride = stride;
                job.chunkRows = 128;
                job.dstBufBytes = buf_bytes;
                rt::runPartition(ctl, job);
            }
            const unsigned tuple = n_cols * 4;
            rt::consumePartition(
                ctl, 0, buf_bytes, 2, 16,
                [&](std::uint32_t off, std::uint32_t rows) {
                    for (std::uint32_t i = 0; i < rows; ++i) {
                        std::uint32_t key =
                            c.dmem().load<std::uint32_t>(off +
                                                         i * tuple);
                        if ((util::crc32Key(key) & 31) != id)
                            ++wrong_core;
                        std::uint32_t tag =
                            c.dmem().load<std::uint32_t>(
                                off + i * tuple + 4);
                        if (tag < n_rows)
                            ++delivered[tag];
                    }
                    c.dualIssue(rows * n_cols, rows * n_cols);
                });
            if (id == 0) {
                ctl.wfe(30);
                ctl.clearEvent(30);
            }
        });
    }
    s.run();
    if (!s.allFinished() || wrong_core != 0)
        return {};
    for (std::uint32_t r = 0; r < n_rows; ++r)
        if (delivered[r] != 1)
            return {};
    return freezeStats(s);
}

/**
 * ATE ping-pong: cores 0 and 31 fetch-add each other's DMEM counter
 * 256 times (near+far hops), then core 0 fires 8 software RPCs.
 */
inline sim::StatsSnapshot
runAtePingPongScenario()
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 8 << 20;
    soc::Soc s(p);

    bool stop = false;
    s.start(31, [&](core::DpCore &c) {
        for (int i = 0; i < 256; ++i)
            s.ate().fetchAdd(c, 0, mem::dmemAddr(0, 0), 1, 8);
        c.blockUntil([&] { return stop; });
    });
    s.start(0, [&](core::DpCore &c) {
        for (int i = 0; i < 256; ++i)
            s.ate().fetchAdd(c, 31, mem::dmemAddr(31, 0), 1, 8);
        for (int i = 0; i < 8; ++i)
            s.ate().swRpc(c, 31, [](core::DpCore &rc) {
                rc.alu(16);
            });
        stop = true;
        s.core(31).wake(c.now());
    });
    s.run();
    if (!s.allFinished())
        return {};
    if (s.core(0).dmem().load<std::uint64_t>(0) != 256 ||
        s.core(31).dmem().load<std::uint64_t>(0) != 256)
        return {};
    return freezeStats(s);
}

} // namespace dpu::test

#endif // DPU_TESTS_SOC_SCENARIOS_HH

/**
 * @file
 * Golden-stats regression harness: re-runs the canonical scenarios
 * and diffs every simulator statistic against checked-in golden
 * snapshots under tests/golden/. The simulator is integer-exact
 * and single-threaded, so counters must match bit-for-bit; any
 * drift means a model change, which is either a bug or a deliberate
 * recalibration — in the latter case regenerate the files with
 *
 *   DPU_REGEN_GOLDEN=1 ./golden_stats_test
 *
 * and commit the diff alongside the model change.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "scenarios.hh"

using namespace dpu;

#ifndef DPU_GOLDEN_DIR
#error "build must define DPU_GOLDEN_DIR"
#endif

namespace {

std::string
goldenPath(const std::string &name)
{
    return std::string(DPU_GOLDEN_DIR) + "/" + name + ".json";
}

bool
regenRequested()
{
    const char *v = std::getenv("DPU_REGEN_GOLDEN");
    return v && *v && std::string(v) != "0";
}

void
checkAgainstGolden(const std::string &name,
                   const sim::StatsSnapshot &actual)
{
    ASSERT_FALSE(actual.counters.empty())
        << "scenario '" << name << "' failed its own self-checks";

    const std::string path = goldenPath(name);
    if (regenRequested()) {
        std::ofstream os(path, std::ios::trunc);
        ASSERT_TRUE(os) << "cannot write " << path;
        actual.writeJson(os);
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream is(path);
    ASSERT_TRUE(is) << "missing golden file " << path
                    << " (run with DPU_REGEN_GOLDEN=1 to create it)";
    std::stringstream buf;
    buf << is.rdbuf();

    sim::StatsSnapshot golden;
    std::string err;
    ASSERT_TRUE(sim::StatsSnapshot::readJson(buf.str(), golden, err))
        << path << ": " << err;

    auto diffs = sim::diffSnapshots(golden, actual);
    EXPECT_TRUE(diffs.empty())
        << diffs.size() << " stat(s) drifted from " << path << ":\n"
        << sim::formatDiffs(diffs)
        << "(if the model change is intentional, regenerate with "
           "DPU_REGEN_GOLDEN=1)";
}

} // namespace

TEST(GoldenStats, Listing1Stream)
{
    checkAgainstGolden("listing1", test::runListing1Scenario());
}

TEST(GoldenStats, HashPartition32Way)
{
    checkAgainstGolden("partition", test::runPartitionScenario());
}

TEST(GoldenStats, AtePingPong)
{
    checkAgainstGolden("ate_pingpong", test::runAtePingPongScenario());
}

TEST(GoldenStats, MbcStorm32To1)
{
    checkAgainstGolden("mbc_storm", test::runMbcStormScenario());
}

TEST(GoldenStats, OffloadServing)
{
    checkAgainstGolden("serving", test::runServingScenario());
}

// The harness must actually trip when a calibration knob moves:
// perturb the DMS per-descriptor overhead (DESIGN.md §7 anchors it
// at 120 ns) and require a non-empty diff against the golden run.
TEST(GoldenStats, DetectsPerturbedDescriptorOverhead)
{
    if (regenRequested())
        GTEST_SKIP() << "regeneration run";

    std::ifstream is(goldenPath("listing1"));
    ASSERT_TRUE(is) << "missing golden file (regenerate first)";
    std::stringstream buf;
    buf << is.rdbuf();
    sim::StatsSnapshot golden;
    std::string err;
    ASSERT_TRUE(sim::StatsSnapshot::readJson(buf.str(), golden, err))
        << err;

    dms::DmsParams perturbed{};
    perturbed.descOverhead += 40'000; // +40 ns per descriptor
    auto actual = test::runListing1Scenario(&perturbed);
    ASSERT_FALSE(actual.counters.empty());

    auto diffs = sim::diffSnapshots(golden, actual);
    EXPECT_FALSE(diffs.empty())
        << "a 33% descriptor-overhead change produced an identical "
           "snapshot - the golden harness is not sensitive to "
           "calibration drift";
    // The perturbation slows the stream down, so at minimum the
    // final tick must have moved.
    EXPECT_NE(golden.counters.at("sim.finalTick"),
              actual.counters.at("sim.finalTick"));
}

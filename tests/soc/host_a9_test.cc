/**
 * @file
 * A9 host-complex tests (Section 2.4): the offload handshake — the
 * host posts work pointers through the MBC, dpCores execute and ack
 * back — plus blocking-receive semantics and host-side time.
 */

#include <gtest/gtest.h>

#include <vector>

#include "soc/host_a9.hh"
#include "soc/soc.hh"

using namespace dpu;

namespace {

soc::SocParams
smallParams()
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 8 << 20;
    return p;
}

} // namespace

TEST(HostA9, OffloadHandshakeRoundTrip)
{
    soc::Soc s(smallParams());
    soc::HostA9 a9(s.eventQueue(), s.mbc());

    // Work descriptors in DRAM: [input ptr, length, output ptr].
    for (unsigned id = 0; id < 8; ++id) {
        mem::Addr desc = 0x1000 + id * 64;
        s.memory().store().store<std::uint64_t>(desc, 0x100000 +
                                                          id * 4096);
        s.memory().store().store<std::uint64_t>(desc + 8, 1024);
        for (std::uint32_t i = 0; i < 256; ++i)
            s.memory().store().store<std::uint32_t>(
                0x100000 + id * 4096 + i * 4, id * 1000 + i);
    }

    std::vector<std::uint64_t> sums(8, 0);
    for (unsigned id = 0; id < 8; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            std::uint64_t desc = s.mbc().recv(c);
            mem::Addr in = c.load<std::uint64_t>(desc);
            std::uint64_t len = c.load<std::uint64_t>(desc + 8);
            std::uint64_t sum = 0;
            for (std::uint64_t i = 0; i < len; i += 4)
                sum += c.load<std::uint32_t>(in + i);
            sums[id] = sum;
            s.mbc().send(c, s.mbc().a9Box(), desc);
        });
    }

    unsigned acks = 0;
    a9.start([&](soc::HostA9 &host) {
        for (unsigned id = 0; id < 8; ++id) {
            host.busyUs(0.5); // driver overhead per submission
            host.sendToCore(id, 0x1000 + id * 64);
        }
        for (unsigned id = 0; id < 8; ++id) {
            (void)host.recv();
            ++acks;
        }
    });

    s.run();
    EXPECT_TRUE(s.allFinished());
    EXPECT_TRUE(a9.finished());
    EXPECT_EQ(acks, 8u);
    for (unsigned id = 0; id < 8; ++id) {
        std::uint64_t expect = 0;
        for (std::uint32_t i = 0; i < 256; ++i)
            expect += id * 1000 + i;
        EXPECT_EQ(sums[id], expect) << "core " << id;
    }
}

TEST(HostA9, RecvBlocksUntilCoreResponds)
{
    soc::Soc s(smallParams());
    soc::HostA9 a9(s.eventQueue(), s.mbc());
    sim::Tick host_got_at = 0;

    s.start(0, [&](core::DpCore &c) {
        c.sleepCycles(80'000); // 100 us of work
        s.mbc().send(c, s.mbc().a9Box(), 7);
    });
    a9.start([&](soc::HostA9 &host) {
        EXPECT_EQ(host.recv(), 7u);
        host_got_at = host.now();
    });
    s.run();
    EXPECT_TRUE(a9.finished());
    EXPECT_GE(host_got_at, sim::dpCoreClock.cyclesToTicks(80'000));
}

TEST(HostA9, BusyUsAdvancesSimulatedTime)
{
    soc::Soc s(smallParams());
    soc::HostA9 a9(s.eventQueue(), s.mbc());
    a9.start([&](soc::HostA9 &host) { host.busyUs(25.0); });
    s.run();
    EXPECT_TRUE(a9.finished());
    EXPECT_GE(s.now(), sim::Tick(25e6));
}

TEST(HostA9, TryRecvPollsWithoutBlocking)
{
    soc::Soc s(smallParams());
    soc::HostA9 a9(s.eventQueue(), s.mbc());

    s.start(0, [&](core::DpCore &c) {
        c.sleepCycles(8'000); // 10 us of work before the reply
        s.mbc().send(c, s.mbc().a9Box(), 42);
    });

    bool empty_at_start = false;
    std::uint64_t got = 0;
    unsigned polls = 0;
    a9.start([&](soc::HostA9 &host) {
        std::uint64_t msg;
        empty_at_start = !host.tryRecv(msg);
        // Poll loop: each miss costs host time, or we'd spin at one
        // tick forever.
        while (!host.tryRecv(msg)) {
            ++polls;
            host.busyUs(1.0);
        }
        got = msg;
    });

    s.run();
    EXPECT_TRUE(a9.finished());
    EXPECT_TRUE(empty_at_start);
    EXPECT_EQ(got, 42u);
    EXPECT_GE(polls, 1u);
}

TEST(HostA9, RecvUntilTimesOutThenDelivers)
{
    soc::Soc s(smallParams());
    soc::HostA9 a9(s.eventQueue(), s.mbc());

    s.start(0, [&](core::DpCore &c) {
        c.sleepCycles(80'000); // replies at ~100 us
        s.mbc().send(c, s.mbc().a9Box(), 9);
    });

    bool first = true, second = false;
    sim::Tick woke_at = 0, delivered_at = 0;
    std::uint64_t got = 0;
    a9.start([&](soc::HostA9 &host) {
        std::uint64_t msg;
        // Deadline at 10 us: nothing has arrived, must time out at
        // exactly the deadline, not hang.
        first = host.recvUntil(sim::Tick(10e6), msg);
        woke_at = host.now();
        // Generous second deadline: the reply must cut it short.
        second = host.recvUntil(sim::Tick(1e12), msg);
        got = msg;
        delivered_at = host.now();
    });

    s.run();
    EXPECT_TRUE(a9.finished());
    EXPECT_FALSE(first);
    EXPECT_EQ(woke_at, sim::Tick(10e6));
    EXPECT_TRUE(second);
    EXPECT_EQ(got, 9u);
    // The wait ended on delivery, far before the 1e12 deadline
    // (though the abandoned timer still drains from the queue).
    EXPECT_LT(delivered_at, sim::Tick(1e9));
}

TEST(HostA9, StaleDeadlineTimerDoesNotDoubleResume)
{
    soc::Soc s(smallParams());
    soc::HostA9 a9(s.eventQueue(), s.mbc());

    // The message beats the deadline, leaving the deadline timer
    // armed. When it later fires, the host is inside an unrelated
    // blocking recv(); a buggy timer would resume it with an empty
    // mailbox (recv returns garbage) or resume a running fiber.
    s.start(0, [&](core::DpCore &c) {
        s.mbc().send(c, s.mbc().a9Box(), 1); // immediate
        c.sleepCycles(800'000);              // ~1 ms
        s.mbc().send(c, s.mbc().a9Box(), 2);
    });

    std::vector<std::uint64_t> seen;
    a9.start([&](soc::HostA9 &host) {
        std::uint64_t msg;
        // Deadline far beyond the second send: timer stays armed
        // long after this wait completes.
        ASSERT_TRUE(host.recvUntil(sim::Tick(500e6), msg));
        seen.push_back(msg);
        seen.push_back(host.recv());
    });

    s.run();
    EXPECT_TRUE(a9.finished());
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], 1u);
    EXPECT_EQ(seen[1], 2u);
}

TEST(HostA9, SleepUntilIsNotCutShortByMessages)
{
    soc::Soc s(smallParams());
    soc::HostA9 a9(s.eventQueue(), s.mbc());

    s.start(0, [&](core::DpCore &c) {
        s.mbc().send(c, s.mbc().a9Box(), 5); // lands mid-sleep
    });

    sim::Tick woke_at = 0;
    std::uint64_t got = 0;
    a9.start([&](soc::HostA9 &host) {
        host.sleepUntil(sim::Tick(50e6));
        woke_at = host.now();
        host.sleepUntil(sim::Tick(1)); // past: must be a no-op
        got = host.recv();
    });

    s.run();
    EXPECT_TRUE(a9.finished());
    EXPECT_EQ(woke_at, sim::Tick(50e6));
    EXPECT_EQ(got, 5u);
}

TEST(HostA9, AllCoresToHostExactlyOnce)
{
    // MBC stress: all 32 dpCores fire salvos at the A9 mailbox with
    // staggered timing. Every message must arrive exactly once.
    soc::Soc s(smallParams());
    soc::HostA9 a9(s.eventQueue(), s.mbc());
    const unsigned n_cores = 32, per_core = 8;

    for (unsigned id = 0; id < n_cores; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            for (unsigned k = 0; k < per_core; ++k) {
                // Prime-stride stagger: bursts collide at some
                // ticks and spread at others.
                c.sleepCycles(1 + (id * 7 + k * 13) % 97);
                s.mbc().send(c, s.mbc().a9Box(),
                             (std::uint64_t(id) << 32) | k);
            }
        });
    }

    std::vector<unsigned> counts(n_cores * per_core, 0);
    a9.start([&](soc::HostA9 &host) {
        for (unsigned i = 0; i < n_cores * per_core; ++i) {
            std::uint64_t msg = host.recv();
            unsigned core = unsigned(msg >> 32);
            unsigned seq = unsigned(msg & 0xffffffffu);
            ASSERT_LT(core, n_cores);
            ASSERT_LT(seq, per_core);
            ++counts[core * per_core + seq];
        }
        // Mailbox must now be empty: no duplicated deliveries.
        std::uint64_t extra;
        EXPECT_FALSE(host.tryRecv(extra));
    });

    s.run();
    EXPECT_TRUE(s.allFinished());
    EXPECT_TRUE(a9.finished());
    for (unsigned i = 0; i < counts.size(); ++i)
        EXPECT_EQ(counts[i], 1u) << "message " << i;
}

TEST(HostA9, RecvUntilDeadlineTiedWithDeliveryTimesOutFirst)
{
    soc::Soc s(smallParams());
    soc::HostA9 a9(s.eventQueue(), s.mbc());

    // Worker timing: sleep 6 + send 4 + MBC latency 30 cycles puts
    // the delivery at tick 50000 — exactly the host's deadline. The
    // deadline timer was scheduled first (at t=0), so same-tick
    // FIFO fires it before the delivery: the bounded wait reports a
    // timeout, and the message is receivable in the same tick.
    s.start(0, [&](core::DpCore &c) {
        c.sleepCycles(6);
        s.mbc().send(c, s.mbc().a9Box(), 77);
    });

    bool timed_out = false;
    sim::Tick woke_at = 0, got_at = 0;
    std::uint64_t got = 0;
    a9.start([&](soc::HostA9 &host) {
        std::uint64_t msg;
        timed_out = !host.recvUntil(50'000, msg);
        woke_at = host.now();
        got = host.recv();
        got_at = host.now();
    });

    s.run();
    EXPECT_TRUE(a9.finished());
    EXPECT_TRUE(timed_out);
    EXPECT_EQ(woke_at, 50'000u);
    EXPECT_EQ(got, 77u);
    EXPECT_EQ(got_at, 50'000u)
        << "the tied delivery must be receivable in the same tick";
}

TEST(HostA9, StaleDeadlineDoesNotCutLaterBoundedWaitShort)
{
    soc::Soc s(smallParams());
    soc::HostA9 a9(s.eventQueue(), s.mbc());

    // The first bounded wait is satisfied long before its 1 ms
    // deadline, leaving that timer armed. It fires in the middle of
    // the second bounded wait, whose own deadline is 3 ms; without
    // the generation bump the stale timer would end the second wait
    // two milliseconds early.
    s.start(0, [&](core::DpCore &c) {
        s.mbc().send(c, s.mbc().a9Box(), 1);
    });

    bool first = false, second = true;
    sim::Tick woke_at = 0;
    a9.start([&](soc::HostA9 &host) {
        std::uint64_t msg;
        first = host.recvUntil(sim::Tick(1e9), msg);
        second = host.recvUntil(sim::Tick(3e9), msg);
        woke_at = host.now();
    });

    s.run();
    EXPECT_TRUE(a9.finished());
    EXPECT_TRUE(first);
    EXPECT_FALSE(second);
    EXPECT_EQ(woke_at, sim::Tick(3e9))
        << "the second wait must run to its own deadline";
}

TEST(HostA9, BackToBackBoundedWaitsTimeOutAtExactDeadlines)
{
    soc::Soc s(smallParams());
    soc::HostA9 a9(s.eventQueue(), s.mbc());

    // Reply lands at (800 + 4 + 30) cycles = tick 1042500, past all
    // four staggered deadlines: each wait must time out at exactly
    // its own deadline, and the fifth wait sees the delivery.
    s.start(0, [&](core::DpCore &c) {
        c.sleepCycles(800);
        s.mbc().send(c, s.mbc().a9Box(), 5);
    });

    std::vector<sim::Tick> wokeAt;
    bool delivered = false;
    std::uint64_t got = 0;
    a9.start([&](soc::HostA9 &host) {
        std::uint64_t msg;
        for (unsigned i = 1; i <= 4; ++i) {
            EXPECT_FALSE(host.recvUntil(sim::Tick(i) * 200'000,
                                        msg));
            wokeAt.push_back(host.now());
        }
        delivered = host.recvUntil(sim::Tick(1e12), msg);
        got = msg;
    });

    s.run();
    EXPECT_TRUE(a9.finished());
    ASSERT_EQ(wokeAt.size(), 4u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(wokeAt[i], sim::Tick(i + 1) * 200'000);
    EXPECT_TRUE(delivered);
    EXPECT_EQ(got, 5u);
}

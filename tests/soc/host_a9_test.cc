/**
 * @file
 * A9 host-complex tests (Section 2.4): the offload handshake — the
 * host posts work pointers through the MBC, dpCores execute and ack
 * back — plus blocking-receive semantics and host-side time.
 */

#include <gtest/gtest.h>

#include <vector>

#include "soc/host_a9.hh"
#include "soc/soc.hh"

using namespace dpu;

namespace {

soc::SocParams
smallParams()
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 8 << 20;
    return p;
}

} // namespace

TEST(HostA9, OffloadHandshakeRoundTrip)
{
    soc::Soc s(smallParams());
    soc::HostA9 a9(s.eventQueue(), s.mbc());

    // Work descriptors in DRAM: [input ptr, length, output ptr].
    for (unsigned id = 0; id < 8; ++id) {
        mem::Addr desc = 0x1000 + id * 64;
        s.memory().store().store<std::uint64_t>(desc, 0x100000 +
                                                          id * 4096);
        s.memory().store().store<std::uint64_t>(desc + 8, 1024);
        for (std::uint32_t i = 0; i < 256; ++i)
            s.memory().store().store<std::uint32_t>(
                0x100000 + id * 4096 + i * 4, id * 1000 + i);
    }

    std::vector<std::uint64_t> sums(8, 0);
    for (unsigned id = 0; id < 8; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            std::uint64_t desc = s.mbc().recv(c);
            mem::Addr in = c.load<std::uint64_t>(desc);
            std::uint64_t len = c.load<std::uint64_t>(desc + 8);
            std::uint64_t sum = 0;
            for (std::uint64_t i = 0; i < len; i += 4)
                sum += c.load<std::uint32_t>(in + i);
            sums[id] = sum;
            s.mbc().send(c, s.mbc().a9Box(), desc);
        });
    }

    unsigned acks = 0;
    a9.start([&](soc::HostA9 &host) {
        for (unsigned id = 0; id < 8; ++id) {
            host.busyUs(0.5); // driver overhead per submission
            host.sendToCore(id, 0x1000 + id * 64);
        }
        for (unsigned id = 0; id < 8; ++id) {
            (void)host.recv();
            ++acks;
        }
    });

    s.run();
    EXPECT_TRUE(s.allFinished());
    EXPECT_TRUE(a9.finished());
    EXPECT_EQ(acks, 8u);
    for (unsigned id = 0; id < 8; ++id) {
        std::uint64_t expect = 0;
        for (std::uint32_t i = 0; i < 256; ++i)
            expect += id * 1000 + i;
        EXPECT_EQ(sums[id], expect) << "core " << id;
    }
}

TEST(HostA9, RecvBlocksUntilCoreResponds)
{
    soc::Soc s(smallParams());
    soc::HostA9 a9(s.eventQueue(), s.mbc());
    sim::Tick host_got_at = 0;

    s.start(0, [&](core::DpCore &c) {
        c.sleepCycles(80'000); // 100 us of work
        s.mbc().send(c, s.mbc().a9Box(), 7);
    });
    a9.start([&](soc::HostA9 &host) {
        EXPECT_EQ(host.recv(), 7u);
        host_got_at = host.now();
    });
    s.run();
    EXPECT_TRUE(a9.finished());
    EXPECT_GE(host_got_at, sim::dpCoreClock.cyclesToTicks(80'000));
}

TEST(HostA9, BusyUsAdvancesSimulatedTime)
{
    soc::Soc s(smallParams());
    soc::HostA9 a9(s.eventQueue(), s.mbc());
    a9.start([&](soc::HostA9 &host) { host.busyUs(25.0); });
    s.run();
    EXPECT_TRUE(a9.finished());
    EXPECT_GE(s.now(), sim::Tick(25e6));
}

/**
 * @file
 * Power-model tests (Section 2.5, Figure 5): the breakdown sums to
 * the designed 5.8 W, leakage exceeds 37%, per-core dynamic power
 * matches the published 51 mW, and the M0's power states /
 * per-macro gating reduce total power monotonically.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "soc/power.hh"

using namespace dpu::soc;

TEST(Power, BreakdownSumsToDesignPower)
{
    PowerModel pm(dpu40nm());
    double sum = 0;
    for (const auto &c : pm.breakdown())
        sum += c.watts;
    EXPECT_NEAR(sum, 5.8, 1e-9);
}

TEST(Power, LeakageIsOver37Percent)
{
    PowerModel pm(dpu40nm());
    double leak = 0;
    for (const auto &c : pm.breakdown())
        if (c.name == "leakage")
            leak = c.watts;
    EXPECT_GE(leak / 5.8, 0.37);
}

TEST(Power, PerCoreDynamicIs51mW)
{
    EXPECT_NEAR(PowerModel::dpCoreDynamicW, 0.051, 1e-12);
    PowerModel pm(dpu40nm());
    double cores = 0;
    for (const auto &c : pm.breakdown())
        if (c.name == "dpCores (dynamic)")
            cores = c.watts;
    EXPECT_NEAR(cores, 32 * 0.051, 1e-9);
}

TEST(Power, FullyActiveEqualsDesignPower)
{
    PowerModel pm(dpu40nm());
    EXPECT_NEAR(pm.totalWatts(), 5.8, 1e-9);
}

TEST(Power, GatingStatesReduceMonotonically)
{
    PowerModel pm(dpu40nm());
    double active = pm.totalWatts();
    pm.setMacroState(0, PowerState::ClockGated);
    double gated = pm.totalWatts();
    pm.setMacroState(0, PowerState::Retention);
    double retention = pm.totalWatts();
    pm.setMacroState(0, PowerState::Off);
    double off = pm.totalWatts();
    EXPECT_LT(gated, active);
    EXPECT_LT(retention, gated);
    EXPECT_LT(off, retention);
}

TEST(Power, AllMacrosOffStillLeavesUncorePower)
{
    PowerModel pm(dpu40nm());
    for (unsigned m = 0; m < 4; ++m)
        pm.setMacroState(m, PowerState::Off);
    EXPECT_GT(pm.totalWatts(), 1.0);
    EXPECT_LT(pm.totalWatts(), 5.8);
}

TEST(Power, SixteenNmConfigScales)
{
    PowerModel pm(dpu16nm());
    double sum = 0;
    for (const auto &c : pm.breakdown())
        sum += c.watts;
    EXPECT_NEAR(sum, 12.0, 1e-9);
    // 160 cores at the 16 nm process's per-core dynamic power.
    double cores = 0;
    for (const auto &c : pm.breakdown())
        if (c.name == "dpCores (dynamic)")
            cores = c.watts;
    EXPECT_NEAR(cores, 160 * dpu16nm().coreDynamicW, 1e-9);
}

TEST(Power, StateQueriesRoundTrip)
{
    PowerModel pm(dpu40nm());
    EXPECT_EQ(pm.macroState(2), PowerState::Active);
    pm.setMacroState(2, PowerState::Retention);
    EXPECT_EQ(pm.macroState(2), PowerState::Retention);
}

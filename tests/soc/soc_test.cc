/**
 * @file
 * SoC assembly tests: the 40 nm and 16 nm configurations, kernel
 * scheduling across all cores, stats plumbing, and cross-complex
 * isolation at 16 nm.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/trace.hh"
#include "soc/soc.hh"

using namespace dpu;

TEST(Soc, FortyNmMatchesPaperGeometry)
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 8 << 20;
    soc::Soc s(p);
    EXPECT_EQ(s.nCores(), 32u);
    EXPECT_STREQ(s.params().ddr.name, "DDR3-1600");
    EXPECT_DOUBLE_EQ(s.power().provisionedWatts(), 6.0);
}

TEST(Soc, SixteenNmShrink)
{
    soc::SocParams p = soc::dpu16nm();
    p.ddrBytes = 8 << 20;
    soc::Soc s(p);
    // Section 2.5: 160 dpCores in five 32-core complexes, 76 GB/s.
    EXPECT_EQ(s.nCores(), 160u);
    EXPECT_EQ(s.params().nComplexes, 5u);
    EXPECT_GT(s.params().ddr.peakBytesPerSec(), 70e9);
    EXPECT_DOUBLE_EQ(s.power().provisionedWatts(), 12.0);
}

TEST(Soc, StartAllRunsTheSameImageEverywhere)
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 8 << 20;
    soc::Soc s(p);
    std::vector<int> ran(32, 0);
    s.startAll([&](core::DpCore &c) {
        ran[c.id()] = 1;
        c.cycles(10 * (c.id() + 1));
    });
    s.run();
    EXPECT_TRUE(s.allFinished());
    for (int r : ran)
        EXPECT_EQ(r, 1);
}

TEST(Soc, RunForLimitsSimulatedTime)
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 8 << 20;
    soc::Soc s(p);
    s.start(0, [](core::DpCore &c) {
        for (int i = 0; i < 1000; ++i)
            c.sleepCycles(100000);
    });
    s.runFor(1'000'000); // 1 us
    EXPECT_FALSE(s.allFinished());
    EXPECT_LE(s.now(), 2'000'000u);
}

TEST(Soc, StatsDumpContainsAllGroups)
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 8 << 20;
    soc::Soc s(p);
    s.start(0, [](core::DpCore &c) {
        c.alu(100);
        (void)c.load<std::uint64_t>(0x1000); // touch DDR
    });
    s.run();
    std::ostringstream os;
    s.dumpStats(os);
    std::string out = os.str();
    EXPECT_NE(out.find("core0.aluOps = 100"), std::string::npos);
    EXPECT_NE(out.find("ddr.bytesRead"), std::string::npos);
}

TEST(Soc, SixteenNmComplexesHaveIndependentDmsAndAte)
{
    soc::SocParams p = soc::dpu16nm();
    p.ddrBytes = 16 << 20;
    soc::Soc s(p);
    // Core 40 belongs to complex 1.
    EXPECT_EQ(&s.dmsFor(40), &s.dms(1));
    EXPECT_EQ(&s.ateFor(40), &s.ate(1));
    EXPECT_NE(&s.dms(0), &s.dms(1));

    // An ATE fetch-add inside complex 1 works with global ids.
    s.core(33).dmem().store<std::uint64_t>(0, 0);
    s.start(40, [&](core::DpCore &c) {
        s.ateFor(40).fetchAdd(c, 33, mem::dmemAddr(33, 0), 5, 8);
    });
    s.run();
    EXPECT_EQ(s.core(33).dmem().load<std::uint64_t>(0), 5u);
}

TEST(Soc, SecondsTracksTicks)
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 8 << 20;
    soc::Soc s(p);
    s.start(0, [](core::DpCore &c) { c.sleepCycles(800'000'000); });
    s.run(); // 800 M cycles at 800 MHz = 1 s
    EXPECT_NEAR(s.seconds(), 1.0, 1e-6);
}

TEST(Soc, QueueSamplerEmitsHeartbeatWhileArmedThenSelfCancels)
{
    sim::tracer().disarm();
    sim::tracer().clear();

    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 8 << 20;
    soc::Soc s(p);
    s.start(0, [](core::DpCore &c) {
        for (int i = 0; i < 100; ++i)
            c.sleepCycles(10000);
    });

    // Armed: the heartbeat re-arms every period and drops "eventq"
    // counter samples into the trace.
    sim::tracer().arm(1 << 12);
    s.enableQueueSampling(100'000); // 100 ns
    s.runFor(2'000'000);
    EXPECT_GT(sim::tracer().size(), 0u);
    std::ostringstream os;
    sim::tracer().exportJson(os);
    EXPECT_NE(os.str().find("eventq"), std::string::npos);

    // Disarmed: the sampler cancels itself on its next firing, so
    // run() drains instead of ticking forever.
    sim::tracer().disarm();
    s.run();
    EXPECT_TRUE(s.allFinished());
    EXPECT_EQ(s.eventQueue().pending(), 0u);

    sim::tracer().clear();
}

/**
 * @file
 * Board-layer tests: link fabric timing and fault semantics, bulk
 * DMA between DPU DDR spaces, the cross-DPU workloads, shard
 * routing, and the multi-DPU determinism + golden contract — a
 * fixed 2-DPU sharded workload must produce bit-identical stats
 * across reruns (clean and under a seeded link-fault schedule) and
 * match the checked-in snapshot in tests/golden/board.json.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "board/board.hh"
#include "board/board_apps.hh"
#include "host/board_offload.hh"
#include "sim/fault.hh"
#include "sim/stats.hh"
#include "sim/stats_registry.hh"

using namespace dpu;

#ifndef DPU_GOLDEN_DIR
#error "build must define DPU_GOLDEN_DIR"
#endif

namespace {

/**
 * The canonical board scenario: 2 DPUs, the sharded SQL workload
 * at a fixed seed. Returns the full stats snapshot (plus the end
 * tick); empty on any validation failure.
 */
sim::StatsSnapshot
runBoardScenario(const char *faults = nullptr,
                 std::uint64_t fault_seed = 42)
{
    sim::faultPlane().reset();
    if (faults)
        sim::faultPlane().configure(faults, fault_seed);

    board::BoardParams bp;
    bp.nDpus = 2;
    board::Board b(bp);
    board::ShardedSqlConfig cfg;
    cfg.rowsPerDpu = 4096;
    const board::ShardedSqlResult res = board::runShardedSql(b, cfg);
    sim::faultPlane().reset();
    if (!res.valid)
        return {};
    sim::StatsSnapshot snap =
        sim::StatsRegistry::instance().snapshot();
    snap.counters["sim.finalTick"] = b.now();
    return snap;
}

bool
regenRequested()
{
    const char *v = std::getenv("DPU_REGEN_GOLDEN");
    return v && *v && std::string(v) != "0";
}

} // namespace

// ----------------------------------------------------------------
// Link fabric
// ----------------------------------------------------------------

TEST(LinkFabric, RpcDeliveryAndChannelSerialization)
{
    sim::faultPlane().reset();
    board::BoardParams bp;
    bp.nDpus = 2;
    board::Board b(bp);

    struct Arrival
    {
        unsigned src;
        std::uint64_t payload;
        sim::Tick at;
    };
    std::vector<Arrival> got;
    b.fabric().onRpc(1, [&](unsigned src, std::uint64_t payload) {
        got.push_back({src, payload, b.now()});
    });
    b.fabric().sendRpc(0, 1, 0xabcdull);
    b.fabric().sendRpc(0, 1, 0xef01ull);
    b.run();

    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].src, 0u);
    EXPECT_EQ(got[0].payload, 0xabcdull);
    EXPECT_EQ(got[1].payload, 0xef01ull);
    // Both burned at least the hop latency...
    EXPECT_GE(got[0].at, bp.link.hopLatency);
    // ...and the shared (0,1) channel serialized them: the second
    // message's wire time starts after the first finishes.
    EXPECT_GT(got[1].at, got[0].at);
    EXPECT_EQ(b.fabric().messages(), 2u);
    EXPECT_GT(b.fabric().utilization(0, 1), 0.0);
    EXPECT_EQ(b.fabric().utilization(1, 0), 0.0);
}

TEST(LinkFabric, BulkDmaCopiesBetweenDdrSpaces)
{
    sim::faultPlane().reset();
    board::BoardParams bp;
    bp.nDpus = 2;
    board::Board b(bp);

    std::vector<std::uint8_t> pattern(4096);
    for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = std::uint8_t(i * 7 + 3);
    b.dpu(0).memory().store().write(0x2000, pattern.data(),
                                    pattern.size());

    bool ok = false;
    b.dma(0, 0x2000, 1, 0x9000, pattern.size(),
          [&](bool k) { ok = k; });
    b.run();

    EXPECT_TRUE(ok);
    std::vector<std::uint8_t> got(pattern.size());
    b.dpu(1).memory().store().read(0x9000, got.data(), got.size());
    EXPECT_EQ(got, pattern);
    EXPECT_GE(b.fabric().bytesCarried(), pattern.size());
}

TEST(LinkFabric, DroppedBulkIsRetriedTransparently)
{
    sim::faultPlane().reset();
    // Exactly the first link message is lost; the Board's bounded
    // retransmit must deliver on the second attempt.
    sim::faultPlane().configure("link.drop@nth=1,max=1", 7);
    board::BoardParams bp;
    bp.nDpus = 2;
    board::Board b(bp);

    std::vector<std::uint8_t> pattern(512, 0x5a);
    b.dpu(0).memory().store().write(0x2000, pattern.data(),
                                    pattern.size());
    bool ok = false;
    b.dma(0, 0x2000, 1, 0x9000, pattern.size(),
          [&](bool k) { ok = k; });
    b.run();
    sim::faultPlane().reset();

    EXPECT_TRUE(ok);
    std::vector<std::uint8_t> got(pattern.size());
    b.dpu(1).memory().store().read(0x9000, got.data(), got.size());
    EXPECT_EQ(got, pattern);
    EXPECT_EQ(b.fabric().statGroup().get("bulkRetries"), 1u);
}

TEST(LinkFabric, ExhaustedRetriesReportFailure)
{
    sim::faultPlane().reset();
    sim::faultPlane().configure("link.drop@p=1", 7);
    board::BoardParams bp;
    bp.nDpus = 2;
    bp.dmaRetries = 2;
    board::Board b(bp);

    b.dpu(0).memory().store().store<std::uint32_t>(0x2000, 17);
    bool called = false, ok = true;
    b.dma(0, 0x2000, 1, 0x9000, 4, [&](bool k) {
        called = true;
        ok = k;
    });
    b.run();
    sim::faultPlane().reset();

    EXPECT_TRUE(called);
    EXPECT_FALSE(ok);
    EXPECT_EQ(b.fabric().statGroup().get("bulkFailed"), 1u);
}

// ----------------------------------------------------------------
// Cross-DPU workloads
// ----------------------------------------------------------------

TEST(BoardApps, ShardedSqlValidAtEveryBoardSize)
{
    for (unsigned n : {1u, 2u, 4u}) {
        sim::faultPlane().reset();
        board::BoardParams bp;
        bp.nDpus = n;
        board::Board b(bp);
        board::ShardedSqlConfig cfg;
        cfg.rowsPerDpu = 4096;
        const auto res = board::runShardedSql(b, cfg);
        EXPECT_TRUE(res.valid) << n << " DPUs";
        EXPECT_EQ(res.rows, std::uint64_t(4096) * n);
        EXPECT_GT(res.seconds, 0.0);
        if (n > 1) {
            EXPECT_GT(res.bytesShipped, 0u);
            EXPECT_GT(res.peakLinkUtilization, 0.0);
        } else {
            EXPECT_EQ(res.bytesShipped, 0u);
        }
    }
}

TEST(BoardApps, DistributedHllMergesExactly)
{
    sim::faultPlane().reset();
    board::BoardParams bp;
    bp.nDpus = 2;
    board::Board b(bp);
    board::DistHllConfig cfg;
    cfg.elementsPerDpu = 1 << 12;
    cfg.cardinality = 1 << 10;
    const auto res = board::runDistributedHll(b, cfg);
    EXPECT_TRUE(res.valid);
    EXPECT_TRUE(res.sketchExact);
    EXPECT_GT(res.trueDistinct, 0u);
    EXPECT_LT(res.errorFrac, 0.15);
}

// ----------------------------------------------------------------
// Shard routing
// ----------------------------------------------------------------

TEST(BoardScheduler, HashRoutingIsDeterministicAndSpread)
{
    sim::faultPlane().reset();
    board::BoardParams bp;
    bp.nDpus = 4;
    board::Board b(bp);
    host::BoardScheduler sched(b, host::OffloadParams{},
                               host::ShardRouting::Hash);

    std::vector<unsigned> counts(4, 0);
    for (unsigned i = 0; i < 64; ++i) {
        host::JobRequest req;
        req.app = "filter";
        req.seed = 0x1000 + i;
        const unsigned d = sched.route(req);
        // Same request, same home DPU — a pure function.
        EXPECT_EQ(sched.route(req), d);
        ++counts[d];
    }
    unsigned used = 0;
    for (unsigned c : counts)
        used += c > 0;
    EXPECT_GE(used, 3u) << "hash routing collapsed onto few shards";
}

TEST(BoardScheduler, RoundRobinStripesArrivals)
{
    sim::faultPlane().reset();
    board::BoardParams bp;
    bp.nDpus = 2;
    board::Board b(bp);
    host::BoardScheduler sched(b, host::OffloadParams{},
                               host::ShardRouting::RoundRobin);
    host::JobRequest req;
    req.app = "filter";
    EXPECT_EQ(sched.route(req), 0u);
    EXPECT_EQ(sched.route(req), 1u);
    EXPECT_EQ(sched.route(req), 0u);
}

// ----------------------------------------------------------------
// Determinism + golden
// ----------------------------------------------------------------

TEST(BoardDeterminism, RerunsAreBitIdentical)
{
    const auto a = runBoardScenario();
    const auto b = runBoardScenario();
    ASSERT_FALSE(a.counters.empty());
    const auto diffs = sim::diffSnapshots(a, b);
    EXPECT_TRUE(diffs.empty())
        << diffs.size() << " stat(s) differ across reruns:\n"
        << sim::formatDiffs(diffs);
}

TEST(BoardDeterminism, FaultReplayIsBitIdentical)
{
    const char *spec = "link.drop@p=0.02;link.delay@p=0.05";
    const auto a = runBoardScenario(spec, 42);
    const auto b = runBoardScenario(spec, 42);
    ASSERT_FALSE(a.counters.empty())
        << "workload did not survive the fault schedule";
    const auto diffs = sim::diffSnapshots(a, b);
    EXPECT_TRUE(diffs.empty())
        << diffs.size()
        << " stat(s) differ across seeded fault replays:\n"
        << sim::formatDiffs(diffs);
}

TEST(BoardDeterminism, GoldenSnapshotMatches)
{
    const auto actual = runBoardScenario();
    ASSERT_FALSE(actual.counters.empty());

    const std::string path =
        std::string(DPU_GOLDEN_DIR) + "/board.json";
    if (regenRequested()) {
        std::ofstream os(path, std::ios::trunc);
        ASSERT_TRUE(os) << "cannot write " << path;
        actual.writeJson(os);
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream is(path);
    ASSERT_TRUE(is) << "missing golden file " << path
                    << " (run with DPU_REGEN_GOLDEN=1 to create)";
    std::stringstream buf;
    buf << is.rdbuf();
    sim::StatsSnapshot golden;
    std::string err;
    ASSERT_TRUE(
        sim::StatsSnapshot::readJson(buf.str(), golden, err))
        << path << ": " << err;

    const auto diffs = sim::diffSnapshots(golden, actual);
    EXPECT_TRUE(diffs.empty())
        << diffs.size() << " stat(s) drifted from " << path
        << ":\n"
        << sim::formatDiffs(diffs)
        << "(if the board model change is intentional, regenerate "
           "with DPU_REGEN_GOLDEN=1)";
}

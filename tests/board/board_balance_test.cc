/**
 * @file
 * The board-tier balance test wall.
 *
 * Three layers, mirroring the module's split:
 *
 *  - planner laws: board::planMigrations generalizes the PR-8 rack
 *    planner to any node tier — strict improvement, freeze and
 *    min-load guards, the per-window budget, lowest-index ties, and
 *    the no-double-move invariant;
 *
 *  - drain-then-switch probes: a live skewed run must commit real
 *    migrations (forwarding-epoch deltas observed, exactly one
 *    router flip per commit), land byte-identical partition images
 *    wherever a partition ends up homed, and keep the link fabric's
 *    fate-exclusive byte accounting (workload / dropped / migration
 *    sum to offered);
 *
 *  - failure + determinism walls: retransmit-exhausted migrations
 *    abort cleanly with every partition intact at its old home; a
 *    wedged DMAC mid-migration times out and poisons the engine
 *    roles without wedging the run; and ten runs across --threads
 *    {1, 2, 4} with live migrations under a seeded fault schedule
 *    are bit-identical in stats, traces, homes and memory images.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "board/balance.hh"
#include "board/board.hh"
#include "host/board_offload.hh"
#include "sim/fault.hh"
#include "sim/stats.hh"
#include "sim/stats_registry.hh"
#include "sim/trace.hh"
#include "topo/topology.hh"

using namespace dpu;
using board::MigrationStep;
using board::PlannerParams;

namespace {

struct PlaneGuard
{
    PlaneGuard() { sim::faultPlane().reset(); }
    ~PlaneGuard() { sim::faultPlane().reset(); }
};

// ----------------------------------------------------------------
// The shared balanced-board scenario
// ----------------------------------------------------------------

constexpr sim::Tick kWindow = 500'000'000;   // 0.5 ms
constexpr unsigned kDpus = 4;
constexpr unsigned kParts = 8;
constexpr std::uint64_t kStateBytes = 4096;

/** A trivial local job: lanes charge a few ALU ops and ack. No DMS
 *  and no cross-DPU traffic, so the link fabric carries ONLY the
 *  balancer's migration chunks and deltas. */
host::JobRequest
quickJob()
{
    host::JobRequest req;
    req.makeJob = [](const apps::ServingContext &) {
        apps::ServingJob job;
        job.stage = [] {};
        job.lane = [](core::DpCore &c, unsigned) { c.alu(16); };
        return job;
    };
    return req;
}

board::BoardParams
balancedParams(unsigned threads)
{
    board::BoardParams bp;
    bp.nDpus = kDpus;
    bp.threads = threads;
    bp.balance.window = kWindow;
    bp.balance.ewmaAlpha = 0.7;
    bp.balance.hotFactor = 1.1;
    bp.balance.maxMigrationsPerWindow = 2;
    bp.balance.minPartitionLoad = 2.0;
    bp.balance.keyPartitions = kParts;
    bp.balance.stateBytesPerPartition = kStateBytes;
    bp.balance.stagingBufBytes = 1024; // 4 chunks per partition
    bp.balance.migrationTimeout = 2 * kWindow;
    return bp;
}

/** A balanced 4-DPU board with a skewed keyed offer stream: 90% of
 *  requests hammer the partitions initially homed on one DPU. */
struct Scenario
{
    std::unique_ptr<board::Board> brd;
    std::unique_ptr<host::BoardScheduler> sched;
    unsigned hotDpu = 0;
    std::vector<unsigned> hotParts;
    std::vector<unsigned> initialHome;

    explicit Scenario(unsigned threads)
    {
        brd = std::make_unique<board::Board>(
            balancedParams(threads));
        host::OffloadParams op;
        op.nCores = 8; // engine core 31 stays unmanaged
        op.groupSize = 4;
        sched = std::make_unique<host::BoardScheduler>(*brd, op);
        hotDpu = sched->partitions().homeOf(0, kDpus);
        for (unsigned p = 0; p < kParts; ++p) {
            initialHome.push_back(
                sched->partitions().homeOf(p, kDpus));
            if (initialHome.back() == hotDpu)
                hotParts.push_back(p);
        }
    }

    /** @p n offers, 4 us apart: 90% on the hot DPU's partitions. */
    void
    offerSkewed(unsigned n)
    {
        for (unsigned i = 0; i < n; ++i) {
            const std::uint64_t key =
                i % 10 < 9 ? hotParts[i % hotParts.size()]
                           : i % kParts;
            sched->offer(sim::Tick(i) * 4'000'000, key, quickJob());
        }
    }

    board::BoardBalancer &bal() { return *sched->balancer(); }

    /** Every partition's state range, read from its CURRENT home,
     *  concatenated in partition order. */
    std::vector<std::uint8_t>
    images() const
    {
        std::vector<std::uint8_t> out;
        for (unsigned p = 0; p < kParts; ++p) {
            const auto img = sched->balancer()->stateImage(p);
            out.insert(out.end(), img.begin(), img.end());
        }
        return out;
    }

    std::vector<unsigned>
    homes() const
    {
        std::vector<unsigned> h;
        for (unsigned p = 0; p < kParts; ++p)
            h.push_back(sched->balancer()->homeOf(p));
        return h;
    }
};

/** EXPECTs that every partition's image matches its seed pattern
 *  byte for byte, wherever the partition is homed now. */
void
expectImagesIntact(Scenario &s)
{
    for (unsigned part = 0; part < kParts; ++part) {
        const auto img = s.bal().stateImage(part);
        ASSERT_EQ(img.size(), kStateBytes);
        for (std::uint64_t i = 0; i < kStateBytes; ++i)
            ASSERT_EQ(img[i],
                      board::BoardBalancer::statePattern(part, i))
                << "partition " << part << " byte " << i
                << " corrupted (home "
                << s.bal().homeOf(part) << ")";
    }
}

/** EXPECTs the router and the balancer agree on every home, and the
 *  fabric's fate-exclusive byte classes sum to the offered total. */
void
expectInvariants(Scenario &s)
{
    for (unsigned p = 0; p < kParts; ++p)
        EXPECT_EQ(s.sched->partitions().homeOf(p, kDpus),
                  s.bal().homeOf(p))
            << "router/balancer home split on partition " << p;
    board::LinkFabric &f = s.brd->fabric();
    EXPECT_EQ(f.offeredBytes(), f.bytesCarried() +
                                    f.droppedBytes() +
                                    f.migrationBytes())
        << "link byte classes must partition the offered total";
    const auto &rep = s.bal().report();
    EXPECT_EQ(rep.committed + rep.aborted, rep.planned);
}

} // namespace

// ----------------------------------------------------------------
// Planner laws (pure, no board)
// ----------------------------------------------------------------

TEST(BoardPlanner, BalancedLoadPlansNothing)
{
    const std::vector<double> loads{10, 10, 10, 10};
    std::vector<unsigned> home{0, 1, 2, 3};
    const auto plan =
        board::planMigrations(loads, home, 4, PlannerParams{});
    EXPECT_TRUE(plan.empty());
    EXPECT_EQ(home, (std::vector<unsigned>{0, 1, 2, 3}));
}

TEST(BoardPlanner, HotNodeShedsHeaviestToColdest)
{
    // Node 0 owns three partitions and is far above the mean; the
    // heaviest movable one goes to the coldest node (ties: lowest
    // index), and the home map is updated in place.
    const std::vector<double> loads{60, 40, 20, 5};
    std::vector<unsigned> home{0, 0, 0, 1};
    const auto plan =
        board::planMigrations(loads, home, 3, PlannerParams{});
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].partition, 0u);
    EXPECT_EQ(plan[0].from, 0u);
    EXPECT_EQ(plan[0].to, 2u); // node 2 (load 0) colder than 1 (5)
    EXPECT_DOUBLE_EQ(plan[0].load, 60.0);
    EXPECT_EQ(home[0], 2u);
}

TEST(BoardPlanner, StrictImprovementBlocksOscillation)
{
    // Moving the only heavy partition would just relocate the hot
    // spot (dest + load >= src), so the planner must refuse.
    const std::vector<double> loads{50, 1};
    std::vector<unsigned> home{0, 1};
    PlannerParams p;
    p.hotFactor = 1.1;
    p.minPartitionLoad = 1.0;
    const auto plan = board::planMigrations(loads, home, 2, p);
    EXPECT_TRUE(plan.empty());
}

TEST(BoardPlanner, FrozenAndLightPartitionsNeverMove)
{
    const std::vector<double> loads{60, 3, 40};
    std::vector<unsigned> home{0, 0, 0};
    PlannerParams p;
    p.minPartitionLoad = 4.0;
    // Partition 0 (heaviest) is mid-migration: frozen. Partition 1
    // is below minPartitionLoad. Only partition 2 may move.
    const std::vector<bool> frozen{true, false, false};
    const auto plan =
        board::planMigrations(loads, home, 2, p, frozen);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].partition, 2u);
}

TEST(BoardPlanner, BudgetBoundsThePlanAndNoPartitionMovesTwice)
{
    const std::vector<double> loads{30, 28, 26, 24, 1, 1};
    std::vector<unsigned> home{0, 0, 0, 0, 1, 2};
    PlannerParams p;
    p.hotFactor = 1.0;
    p.maxMigrationsPerWindow = 3;
    p.minPartitionLoad = 1.0;
    const auto plan = board::planMigrations(loads, home, 4, p);
    EXPECT_LE(plan.size(), 3u);
    ASSERT_GE(plan.size(), 2u);
    std::vector<bool> seen(loads.size(), false);
    for (const MigrationStep &s : plan) {
        EXPECT_FALSE(seen[s.partition])
            << "partition " << s.partition << " planned twice";
        seen[s.partition] = true;
    }
}

// ----------------------------------------------------------------
// Drain-then-switch: live migrations commit, bytes survive
// ----------------------------------------------------------------

TEST(BoardBalance, SkewedRunCommitsMigrationsOffTheHotDpu)
{
    PlaneGuard g;
    Scenario s(2);
    ASSERT_GE(s.hotParts.size(), 1u);
    s.offerSkewed(240);
    s.sched->run();

    const auto &rep = s.bal().report();
    EXPECT_GE(rep.planned, 1u);
    EXPECT_GE(rep.committed, 1u);
    EXPECT_EQ(rep.aborted, 0u) << "no faults, nothing may abort";

    // At least one of the hot DPU's partitions found a new home,
    // and each commit flipped the router (drain-then-switch: the
    // flip count is visible as reassigned partitions).
    unsigned moved = 0;
    for (unsigned p : s.hotParts)
        if (s.bal().homeOf(p) != s.hotDpu)
            ++moved;
    EXPECT_GE(moved, 1u);
    EXPECT_GE(s.sched->partitions().reassignedCount(), 1u);
    EXPECT_LE(s.sched->partitions().reassignedCount(),
              unsigned(rep.committed));

    // Forwarding epoch observed: requests kept arriving for the
    // partition while it was in flight, each shipping a delta.
    EXPECT_GE(rep.forwarded, 1u);
    EXPECT_GE(rep.deltaBytes, rep.forwarded * 256);

    // The migrated images are byte-identical to the seed pattern,
    // and the migration traffic rode its own accounting class.
    expectImagesIntact(s);
    expectInvariants(s);
    EXPECT_GE(s.brd->fabric().migrationBytes(), rep.stateBytes);
    EXPECT_GE(s.brd->fabric().migrationMessages(),
              rep.committed * (kStateBytes / 1024));

    // The workload itself was untouched by the re-sharding.
    const auto sum = s.sched->summary();
    EXPECT_EQ(sum.completed, 240u);
    EXPECT_EQ(sum.timedOut, 0u);
}

TEST(BoardBalance, StaticWindowZeroBoardMovesNothing)
{
    PlaneGuard g;
    board::BoardParams bp;
    bp.nDpus = kDpus;
    bp.threads = 2; // balance.window stays 0: static placement
    board::Board b(bp);
    host::OffloadParams op;
    op.nCores = 8;
    op.groupSize = 4;
    host::BoardScheduler sched(b, op);
    EXPECT_FALSE(sched.balanced());
    for (unsigned i = 0; i < 64; ++i)
        sched.offer(sim::Tick(i) * 4'000'000, i % 7, quickJob());
    sched.run();
    EXPECT_EQ(sched.partitions().reassignedCount(), 0u);
    EXPECT_EQ(b.fabric().migrationBytes(), 0u);
    EXPECT_EQ(b.fabric().migrationMessages(), 0u);
    EXPECT_EQ(sched.summary().completed, 64u);
}

// ----------------------------------------------------------------
// Failure walls
// ----------------------------------------------------------------

TEST(BoardBalance, ExhaustedRetransmitsAbortCleanlyAndKeepHomes)
{
    PlaneGuard g;
    // Every fabric message drops: each migration chunk burns its
    // full retransmit budget, fails at the source, and the
    // migration aborts once its engines drain. Homes never flip.
    sim::faultPlane().configure("link.drop@p=1", 7);
    Scenario s(2);
    s.offerSkewed(240);
    s.sched->run();

    const auto &rep = s.bal().report();
    EXPECT_EQ(rep.committed, 0u);
    EXPECT_GE(rep.aborted, 1u);
    EXPECT_EQ(rep.timeoutAborts, 0u)
        << "a drained failure must abort cleanly, not time out";
    // The first chunk alone retries 1 + dmaRetries times.
    EXPECT_GE(rep.chunkRetries,
              std::uint64_t(1 + s.brd->params().dmaRetries));
    EXPECT_EQ(s.homes(), s.initialHome);
    EXPECT_EQ(s.sched->partitions().reassignedCount(), 0u);

    // Forwarding-epoch deltas were all lost on the wire — counted,
    // never retried (best effort, like PR-8).
    EXPECT_EQ(rep.deltaDropped, rep.forwarded);

    // Nothing landed: the migration byte class carries only
    // DELIVERED migration traffic; drops burn the dropped class.
    EXPECT_EQ(s.brd->fabric().migrationBytes(), 0u);
    EXPECT_GT(s.brd->fabric().droppedBytes(), 0u);
    expectImagesIntact(s);
    expectInvariants(s);
    EXPECT_EQ(s.sched->summary().completed, 240u);
}

TEST(BoardBalance, WedgedDmacTimesOutPoisonsRolesAndRunFinishes)
{
    PlaneGuard g;
    // The first staging descriptor wedges its DMAC: the chunk never
    // completes, the migration cannot drain, and only the timeout
    // bound at a window boundary can retire it. ate.drop is armed
    // too (the chaos slice's second site); this workload gives it
    // nothing to bite, which is the point — it must stay inert.
    sim::faultPlane().configure(
        "dms.wedge@nth=1,max=1;ate.drop@p=0.05", 13);
    Scenario s(2);
    s.offerSkewed(240);
    s.sched->run();

    const auto &rep = s.bal().report();
    EXPECT_GE(rep.timeoutAborts, 1u);
    // The wedge budget is per fault domain (per DPU), so every
    // source DPU that attempted a hand-off lost its engine DMAC.
    unsigned poisoned = 0;
    for (unsigned d = 0; d < kDpus; ++d)
        poisoned += s.bal().srcPoisoned(d) ? 1 : 0;
    EXPECT_GE(poisoned, 1u) << "a wedged source role must poison";
    EXPECT_EQ(std::uint64_t(poisoned), rep.timeoutAborts);

    // The wedged partition stayed home with its bytes intact, and
    // the run terminated (we are here) despite the hung engine.
    expectImagesIntact(s);
    expectInvariants(s);
    EXPECT_EQ(s.sched->summary().completed, 240u);
    EXPECT_GE(sim::faultPlane().injected(sim::FaultSite::DmsWedge),
              1u);
}

// ----------------------------------------------------------------
// Determinism wall: migrations live, thread count invisible
// ----------------------------------------------------------------

namespace {

struct BalancedRunResult
{
    sim::StatsSnapshot snap;
    std::string trace;
    std::vector<std::uint8_t> images;
    std::vector<unsigned> homes;
};

BalancedRunResult
runBalancedScenario(unsigned threads, const char *faults,
                    std::uint64_t fault_seed)
{
    sim::faultPlane().reset();
    if (faults)
        sim::faultPlane().configure(faults, fault_seed);
    sim::tracer().arm(std::size_t(1) << 14);

    BalancedRunResult out;
    {
        Scenario s(threads);
        s.offerSkewed(160);
        s.sched->run();
        out.images = s.images();
        out.homes = s.homes();
        out.snap = sim::StatsRegistry::instance().snapshot();
        out.snap.counters["sim.finalTick"] = s.brd->now();
    }
    std::ostringstream os;
    sim::tracer().exportJson(os);
    out.trace = os.str();

    sim::tracer().disarm();
    sim::tracer().clear();
    sim::faultPlane().reset();
    return out;
}

} // namespace

TEST(BoardBalance, TenMigratingRunsAcrossThreadCountsBitIdentical)
{
    // Live migrations under a seeded link-fault schedule (drops
    // exercise the retransmit path mid-run), ten runs across
    // --threads {1, 2, 4}: stats, traces, homes and every DDR
    // partition image must match the serial reference bit for bit.
    const char *spec = "link.drop@p=0.05;link.delay@p=0.05";
    const unsigned plan[10] = {1, 1, 2, 2, 2, 2, 4, 4, 4, 4};

    BalancedRunResult ref;
    for (unsigned i = 0; i < 10; ++i) {
        BalancedRunResult r = runBalancedScenario(plan[i], spec, 42);
        ASSERT_FALSE(r.snap.counters.empty());
        if (i == 0) {
            ref = std::move(r);
            EXPECT_FALSE(ref.trace.empty());
            continue;
        }
        const auto diffs = sim::diffSnapshots(ref.snap, r.snap);
        EXPECT_TRUE(diffs.empty())
            << "run " << i << " (threads=" << plan[i] << "): "
            << diffs.size() << " stat(s) diverged from serial:\n"
            << sim::formatDiffs(diffs);
        EXPECT_EQ(r.trace, ref.trace)
            << "run " << i << " (threads=" << plan[i]
            << "): trace digest diverged";
        EXPECT_EQ(r.homes, ref.homes)
            << "run " << i << ": partition homes diverged";
        EXPECT_EQ(r.images, ref.images)
            << "run " << i << ": DDR partition images diverged";
    }
}

// ----------------------------------------------------------------
// Topology validation + misuse
// ----------------------------------------------------------------

TEST(BoardBalance, TopologyValidatesBalancerKnobs)
{
    auto bad = [](board::BalanceParams p) {
        return topo::ClusterTopology::board(4)
            .boardBalance(p)
            .validate();
    };
    board::BalanceParams on;
    on.window = kWindow;
    EXPECT_EQ(bad(on), "");

    board::BalanceParams alpha = on;
    alpha.ewmaAlpha = 0;
    EXPECT_NE(bad(alpha).find("ewmaAlpha"), std::string::npos);

    board::BalanceParams hot = on;
    hot.hotFactor = 0.5;
    EXPECT_NE(bad(hot).find("hotFactor"), std::string::npos);

    board::BalanceParams buf = on;
    buf.stagingBufBytes = 4096;
    EXPECT_NE(bad(buf).find("stagingBufBytes"), std::string::npos);

    board::BalanceParams ragged = on;
    ragged.stateBytesPerPartition = 100; // not a multiple of 8
    EXPECT_NE(bad(ragged).find("stateBytesPerPartition"),
              std::string::npos);

    // window = 0 disables the balancer AND its validation.
    board::BalanceParams off = alpha;
    off.window = 0;
    EXPECT_EQ(bad(off), "");
}

TEST(BoardBalanceDeathTest, EngineCoreManagedBySchedulerDies)
{
    PlaneGuard g;
    board::BoardParams bp = balancedParams(1);
    board::Board b(bp);
    host::OffloadParams op;
    op.nCores = 32; // claims every core, including the engine's
    EXPECT_DEATH(host::BoardScheduler(b, op), "engine core");
}

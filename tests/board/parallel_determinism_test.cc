/**
 * @file
 * The parallel determinism/race test wall.
 *
 * The contract under test: a multi-DPU board run is a pure function
 * of (workload, seed) — the worker-thread count is invisible. A
 * 4-DPU board runs the mixed SQL + HLL workload under a seeded
 * link-fault schedule ten times across --threads {1, 2, 4}; every
 * stats snapshot and every exported trace must be bit-identical to
 * the serial reference. A second group pins parallel mode to the
 * checked-in serial golden (tests/golden/board.json): parallel
 * execution must not merely be self-consistent, it must reproduce
 * the exact schedule the one-queue simulator produced.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "board/board.hh"
#include "board/board_apps.hh"
#include "sim/fault.hh"
#include "sim/stats.hh"
#include "sim/stats_registry.hh"
#include "sim/trace.hh"

using namespace dpu;

#ifndef DPU_GOLDEN_DIR
#error "build must define DPU_GOLDEN_DIR"
#endif

namespace {

struct RunResult
{
    sim::StatsSnapshot snap;
    std::string trace; ///< exported Chrome-trace JSON, the digest
};

/**
 * One full mixed run: 4 DPUs, sharded SQL then distributed HLL,
 * with tracing armed and (optionally) a seeded link-fault schedule,
 * at the given worker-thread count.
 */
RunResult
runMixedScenario(unsigned threads, const char *faults = nullptr,
                 std::uint64_t fault_seed = 42)
{
    sim::faultPlane().reset();
    if (faults)
        sim::faultPlane().configure(faults, fault_seed);
    sim::tracer().arm(std::size_t(1) << 14);

    board::BoardParams bp;
    bp.nDpus = 4;
    bp.threads = threads;
    board::Board b(bp);

    board::ShardedSqlConfig scfg;
    scfg.rowsPerDpu = 2048;
    const auto sres = board::runShardedSql(b, scfg);
    EXPECT_TRUE(sres.valid) << "SQL invalid at threads=" << threads;

    board::DistHllConfig hcfg;
    hcfg.elementsPerDpu = 1 << 12;
    hcfg.cardinality = 1 << 10;
    const auto hres = board::runDistributedHll(b, hcfg);
    EXPECT_TRUE(hres.valid) << "HLL invalid at threads=" << threads;

    RunResult out;
    out.snap = sim::StatsRegistry::instance().snapshot();
    out.snap.counters["sim.finalTick"] = b.now();
    std::ostringstream os;
    sim::tracer().exportJson(os);
    out.trace = os.str();

    sim::tracer().disarm();
    sim::tracer().clear();
    sim::faultPlane().reset();
    return out;
}

/** The board_test golden scenario, with a thread-count knob. */
sim::StatsSnapshot
runGoldenScenario(unsigned threads)
{
    sim::faultPlane().reset();
    board::BoardParams bp;
    bp.nDpus = 2;
    bp.threads = threads;
    board::Board b(bp);
    board::ShardedSqlConfig cfg;
    cfg.rowsPerDpu = 4096;
    const auto res = board::runShardedSql(b, cfg);
    if (!res.valid)
        return {};
    sim::StatsSnapshot snap =
        sim::StatsRegistry::instance().snapshot();
    snap.counters["sim.finalTick"] = b.now();
    return snap;
}

} // namespace

TEST(ParallelDeterminism, TenRunsAcrossThreadCountsAreBitIdentical)
{
    const char *spec = "link.drop@p=0.02;link.delay@p=0.05";
    // 10 runs: 2 serial references, then 2/4-thread replays.
    const unsigned plan[10] = {1, 1, 2, 2, 2, 2, 4, 4, 4, 4};

    RunResult ref;
    for (unsigned i = 0; i < 10; ++i) {
        RunResult r = runMixedScenario(plan[i], spec, 42);
        ASSERT_FALSE(r.snap.counters.empty());
        if (i == 0) {
            ref = std::move(r);
            EXPECT_FALSE(ref.trace.empty());
            continue;
        }
        const auto diffs = sim::diffSnapshots(ref.snap, r.snap);
        EXPECT_TRUE(diffs.empty())
            << "run " << i << " (threads=" << plan[i] << "): "
            << diffs.size() << " stat(s) diverged from serial:\n"
            << sim::formatDiffs(diffs);
        EXPECT_EQ(r.trace, ref.trace)
            << "run " << i << " (threads=" << plan[i]
            << "): trace digest diverged from serial";
    }
}

TEST(ParallelDeterminism, ParallelModeReproducesTheSerialGolden)
{
    const std::string path =
        std::string(DPU_GOLDEN_DIR) + "/board.json";
    std::ifstream is(path);
    ASSERT_TRUE(is) << "missing golden file " << path;
    std::stringstream buf;
    buf << is.rdbuf();
    sim::StatsSnapshot golden;
    std::string err;
    ASSERT_TRUE(sim::StatsSnapshot::readJson(buf.str(), golden, err))
        << path << ": " << err;

    // threads=4 on a 2-DPU board exercises the clamp path.
    for (const unsigned threads : {2u, 4u}) {
        const auto actual = runGoldenScenario(threads);
        ASSERT_FALSE(actual.counters.empty());
        const auto diffs = sim::diffSnapshots(golden, actual);
        EXPECT_TRUE(diffs.empty())
            << "threads=" << threads << ": " << diffs.size()
            << " stat(s) drifted from the serial golden:\n"
            << sim::formatDiffs(diffs);
    }
}

TEST(ParallelDeterminism, MemoryImagesMatchSerialAcrossThreads)
{
    // The stats wall above covers timing; this pins the functional
    // side: the bytes a cross-DPU DMA exchange leaves in every DDR
    // space must not depend on the thread count either.
    auto image = [](unsigned threads) {
        sim::faultPlane().reset();
        board::BoardParams bp;
        bp.nDpus = 4;
        bp.threads = threads;
        board::Board b(bp);
        // All-to-all pattern exchange, issued host-phase.
        std::vector<std::uint8_t> out;
        for (unsigned s = 0; s < 4; ++s) {
            std::vector<std::uint8_t> pat(1024);
            for (std::size_t i = 0; i < pat.size(); ++i)
                pat[i] = std::uint8_t(s * 37 + i * 11);
            b.dpu(s).memory().store().write(0x2000, pat.data(),
                                            pat.size());
            for (unsigned d = 0; d < 4; ++d)
                if (d != s)
                    b.dma(s, 0x2000, d, 0x9000 + s * 0x1000,
                          pat.size());
        }
        b.run();
        for (unsigned d = 0; d < 4; ++d) {
            std::vector<std::uint8_t> got(4 * 0x1000);
            b.dpu(d).memory().store().read(0x9000, got.data(),
                                           got.size());
            out.insert(out.end(), got.begin(), got.end());
        }
        return out;
    };
    const auto serial = image(1);
    EXPECT_EQ(image(2), serial);
    EXPECT_EQ(image(4), serial);
}

/**
 * @file
 * Fault-plane unit tests: spec parsing, firing semantics (p / nth /
 * window / budget / unit filters), seed determinism, the mem.degrade
 * bandwidth divisor, stat-group lifecycle, and randomSpec stability.
 */

#include <gtest/gtest.h>

#include "sim/domain.hh"
#include "sim/fault.hh"

using namespace dpu::sim;

namespace {

/** Fresh plane per test (the process-wide one is shared state). */
struct PlaneGuard
{
    PlaneGuard() { faultPlane().reset(); }
    ~PlaneGuard() { faultPlane().reset(); }
};

} // namespace

TEST(FaultPlane, InertUntilConfigured)
{
    PlaneGuard g;
    FaultPlane &fp = faultPlane();
    EXPECT_FALSE(fp.active());
    EXPECT_FALSE(fp.hasMemFault());
    EXPECT_FALSE(fp.fires(FaultSite::DmsWedge, 0));
    EXPECT_EQ(fp.statGroup(), nullptr);
    EXPECT_EQ(fp.injectedTotal(), 0u);
}

TEST(FaultPlane, ParsesMultiRuleSpec)
{
    PlaneGuard g;
    FaultPlane &fp = faultPlane();
    fp.configure(
        "dms.wedge@nth=20,max=1;"
        "ate.drop@p=0.05,from=1e6,to=2e9,unit=3;"
        "mem.degrade@mag=8",
        42);
    ASSERT_TRUE(fp.active());
    ASSERT_EQ(fp.ruleSet().size(), 3u);

    const FaultRule &wedge = fp.ruleSet()[0];
    EXPECT_EQ(wedge.site, FaultSite::DmsWedge);
    EXPECT_EQ(wedge.nth, 20u);
    EXPECT_EQ(wedge.max, 1u);

    const FaultRule &drop = fp.ruleSet()[1];
    EXPECT_EQ(drop.site, FaultSite::AteDrop);
    EXPECT_DOUBLE_EQ(drop.p, 0.05);
    EXPECT_EQ(drop.from, Tick(1e6));
    EXPECT_EQ(drop.to, Tick(2e9));
    EXPECT_EQ(drop.unit, 3);

    const FaultRule &mem = fp.ruleSet()[2];
    EXPECT_EQ(mem.site, FaultSite::MemDegrade);
    EXPECT_EQ(mem.mag, 8u);
    EXPECT_TRUE(fp.hasMemFault());
}

TEST(FaultPlane, NthRuleFiresOnExactOpportunities)
{
    PlaneGuard g;
    FaultPlane &fp = faultPlane();
    fp.configure("mbc.drop@nth=3", 1);
    unsigned fired = 0;
    for (unsigned i = 1; i <= 12; ++i)
        fired += fp.fires(FaultSite::MbcDrop, Tick(i));
    EXPECT_EQ(fired, 4u); // opportunities 3, 6, 9, 12
    EXPECT_EQ(fp.injected(FaultSite::MbcDrop), 4u);
}

TEST(FaultPlane, BudgetCapsFirings)
{
    PlaneGuard g;
    FaultPlane &fp = faultPlane();
    fp.configure("core.stall@nth=1,max=2,mag=77", 1);
    std::uint64_t mag = 0;
    EXPECT_TRUE(fp.fires(FaultSite::CoreStall, 0, -1, &mag));
    EXPECT_EQ(mag, 77u);
    EXPECT_TRUE(fp.fires(FaultSite::CoreStall, 1));
    for (unsigned i = 0; i < 50; ++i)
        EXPECT_FALSE(fp.fires(FaultSite::CoreStall, Tick(2 + i)));
    EXPECT_EQ(fp.injected(FaultSite::CoreStall), 2u);
}

TEST(FaultPlane, WindowAndUnitFiltersGateOpportunities)
{
    PlaneGuard g;
    FaultPlane &fp = faultPlane();
    fp.configure("ate.drop@nth=1,from=100,to=200,unit=5", 1);
    EXPECT_FALSE(fp.fires(FaultSite::AteDrop, 99, 5));  // early
    EXPECT_FALSE(fp.fires(FaultSite::AteDrop, 150, 4)); // wrong unit
    EXPECT_TRUE(fp.fires(FaultSite::AteDrop, 150, 5));
    EXPECT_FALSE(fp.fires(FaultSite::AteDrop, 200, 5)); // past `to`
    // Filtered opportunities must not advance the nth counter.
    EXPECT_EQ(fp.injected(FaultSite::AteDrop), 1u);
}

TEST(FaultPlane, ProbabilisticRuleIsSeedDeterministic)
{
    PlaneGuard g;
    FaultPlane &fp = faultPlane();

    auto pattern = [&](std::uint64_t seed) {
        fp.configure("ate.drop@p=0.3", seed);
        std::string bits;
        for (unsigned i = 0; i < 200; ++i)
            bits += fp.fires(FaultSite::AteDrop, Tick(i)) ? '1'
                                                          : '0';
        fp.reset();
        return bits;
    };

    const std::string a = pattern(7), b = pattern(7),
                      c = pattern(8);
    EXPECT_EQ(a, b) << "same seed must replay identically";
    EXPECT_NE(a, c) << "different seeds must diverge";
    EXPECT_NE(a.find('1'), std::string::npos);
    EXPECT_NE(a.find('0'), std::string::npos);
}

TEST(FaultPlane, MemDivisorAppliesInsideWindowOnly)
{
    PlaneGuard g;
    FaultPlane &fp = faultPlane();
    fp.configure("mem.degrade@from=1000,to=2000,mag=4", 1);
    EXPECT_EQ(fp.memBwDivisor(999), 1u);
    EXPECT_EQ(fp.memBwDivisor(1000), 4u);
    EXPECT_EQ(fp.memBwDivisor(1999), 4u);
    EXPECT_EQ(fp.memBwDivisor(2000), 1u);
}

TEST(FaultPlane, StatGroupTracksInjections)
{
    PlaneGuard g;
    FaultPlane &fp = faultPlane();
    fp.configure("mbc.drop@nth=1,max=3", 1);
    ASSERT_NE(fp.statGroup(), nullptr);
    fp.fires(FaultSite::MbcDrop, 0);
    fp.fires(FaultSite::MbcDrop, 1);
    EXPECT_EQ(fp.statGroup()->get("mbc.drop"), 2u);
    fp.reset();
    EXPECT_EQ(fp.statGroup(), nullptr);
    EXPECT_EQ(fp.injectedTotal(), 0u);
}

TEST(FaultPlane, RandomSpecIsStableAndParses)
{
    PlaneGuard g;
    for (std::uint64_t seed = 0; seed < 32; ++seed) {
        const std::string spec = FaultPlane::randomSpec(seed);
        EXPECT_EQ(spec, FaultPlane::randomSpec(seed));
        faultPlane().configure(spec, seed);
        EXPECT_TRUE(faultPlane().active()) << spec;
        EXPECT_GE(faultPlane().ruleSet().size(), 1u);
        EXPECT_LE(faultPlane().ruleSet().size(), 3u);
        faultPlane().reset();
    }
    EXPECT_NE(FaultPlane::randomSpec(1), FaultPlane::randomSpec(2));
}

// ----------------------------------------------------------------
// Per-domain streams (the parallel board's determinism contract)
// ----------------------------------------------------------------

TEST(FaultPlane, DomainZeroReplaysThePreDomainStream)
{
    PlaneGuard g;
    FaultPlane &fp = faultPlane();

    auto pattern = [&](unsigned domains) {
        fp.configure("ate.drop@p=0.3", 7);
        if (domains > 1)
            fp.ensureDomains(domains);
        std::string bits;
        for (unsigned i = 0; i < 200; ++i)
            bits += fp.fires(FaultSite::AteDrop, Tick(i)) ? '1'
                                                          : '0';
        fp.reset();
        return bits;
    };

    // Sizing the plane for a 4-DPU board must not perturb what a
    // single-chip run (domain 0) observes.
    EXPECT_EQ(pattern(1), pattern(4));
}

TEST(FaultPlane, DomainStreamsAreIndependent)
{
    PlaneGuard g;
    FaultPlane &fp = faultPlane();

    // Domain 1's decision stream, alone on the plane.
    auto solo = [&] {
        fp.configure("link.drop@p=0.3", 9);
        fp.ensureDomains(4);
        std::string bits;
        DomainScope ds(1);
        for (unsigned i = 0; i < 200; ++i)
            bits += fp.fires(FaultSite::LinkDrop, Tick(i)) ? '1'
                                                           : '0';
        fp.reset();
        return bits;
    }();

    // The same stream with domains 0, 2 and 3 drawing heavily in
    // between: their consumption must not advance domain 1's RNG.
    fp.configure("link.drop@p=0.3", 9);
    fp.ensureDomains(4);
    std::string bits;
    for (unsigned i = 0; i < 200; ++i) {
        for (const unsigned other : {0u, 2u, 3u}) {
            DomainScope ds(other);
            fp.fires(FaultSite::LinkDrop, Tick(i));
            fp.fires(FaultSite::LinkDrop, Tick(i));
        }
        DomainScope ds(1);
        bits += fp.fires(FaultSite::LinkDrop, Tick(i)) ? '1' : '0';
    }
    fp.reset();
    EXPECT_EQ(bits, solo)
        << "other domains' draws leaked into domain 1's stream";

    // Different domains get different streams from one rule seed.
    fp.configure("link.drop@p=0.3", 9);
    fp.ensureDomains(2);
    std::string d0, d1;
    for (unsigned i = 0; i < 200; ++i) {
        {
            DomainScope ds(0);
            d0 += fp.fires(FaultSite::LinkDrop, Tick(i)) ? '1' : '0';
        }
        {
            DomainScope ds(1);
            d1 += fp.fires(FaultSite::LinkDrop, Tick(i)) ? '1' : '0';
        }
    }
    fp.reset();
    EXPECT_NE(d0, d1) << "chips must not fault in lockstep";
}

TEST(FaultPlane, PerDomainTalliesFoldIntoOneStatGroup)
{
    PlaneGuard g;
    FaultPlane &fp = faultPlane();
    fp.configure("mbc.drop@nth=1", 1);
    fp.ensureDomains(3);

    for (unsigned hits = 0; hits < 1; ++hits)
        fp.fires(FaultSite::MbcDrop, 0);
    {
        DomainScope ds(1);
        fp.fires(FaultSite::MbcDrop, 1);
        fp.fires(FaultSite::MbcDrop, 2);
    }
    {
        DomainScope ds(2);
        fp.fires(FaultSite::MbcDrop, 3);
        fp.fires(FaultSite::MbcDrop, 4);
        fp.fires(FaultSite::MbcDrop, 5);
    }

    // Budgets and counts are per (rule, domain)...
    ASSERT_EQ(fp.ruleSet().size(), 1u);
    ASSERT_GE(fp.ruleSet()[0].dom.size(), 3u);
    EXPECT_EQ(fp.ruleSet()[0].dom[0].fired, 1u);
    EXPECT_EQ(fp.ruleSet()[0].dom[1].fired, 2u);
    EXPECT_EQ(fp.ruleSet()[0].dom[2].fired, 3u);
    // ...but the exported stats stay one aggregated group.
    EXPECT_EQ(fp.statGroup()->get("mbc.drop"), 6u);
    EXPECT_EQ(fp.injected(FaultSite::MbcDrop), 6u);
    EXPECT_EQ(fp.injectedTotal(), 6u);
}

/**
 * @file
 * EpochRunner unit tests: the barrier/lookahead protocol edges.
 *
 *  - zero lookahead degenerates to serial (global tick) order;
 *  - a message whose latency equals the lookahead lands exactly on
 *    the next epoch, never inside the sending one;
 *  - more partitions than workers (oversubscription) changes
 *    nothing observable;
 *  - idle gaps between event clusters are skipped, not marched
 *    through epoch by epoch;
 *  - nextDueLowerBound() bounds and refines as documented.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/parallel.hh"

using namespace dpu;

namespace {

constexpr sim::Tick hop = 600'000; // the board link's 600 ns

/** No-op drain for runs without cross-partition traffic. */
void
noDrain(unsigned)
{
}

} // namespace

TEST(EpochRunner, ZeroLookaheadRunsInGlobalTickOrder)
{
    sim::EventQueue q0, q1;
    std::vector<std::pair<unsigned, sim::Tick>> log;
    for (unsigned i = 0; i < 40; ++i) {
        const sim::Tick t0 = i * 10;
        const sim::Tick t1 = i * 10 + 5;
        q0.schedule(t0, [&log, t0] { log.push_back({0, t0}); });
        q1.schedule(t1, [&log, t1] { log.push_back({1, t1}); });
    }

    sim::ParallelParams pp;
    pp.threads = 1;
    pp.lookahead = 0; // tick-lockstep: the serial-order fallback
    sim::EpochRunner r({&q0, &q1}, pp, noDrain);
    const sim::Tick end = r.run();

    ASSERT_EQ(log.size(), 80u);
    EXPECT_TRUE(std::is_sorted(
        log.begin(), log.end(),
        [](const auto &a, const auto &b) {
            return a.second < b.second;
        }))
        << "zero lookahead must interleave partitions in global "
           "tick order";
    EXPECT_EQ(end, sim::Tick(39 * 10 + 5));
    EXPECT_EQ(q0.now(), end);
    EXPECT_EQ(q1.now(), end);
}

TEST(EpochRunner, HopLatencyMessageStraddlesTheEpochBoundary)
{
    sim::EventQueue q0, q1;
    std::vector<sim::Tick> inbox; // deliveries bound for q1
    sim::Tick delivered = 0;

    q0.schedule(0, [&inbox] { inbox.push_back(hop); });

    sim::ParallelParams pp;
    pp.threads = 1;
    pp.lookahead = hop;
    sim::EpochRunner r(
        {&q0, &q1}, pp, [&](unsigned dst) {
            if (dst != 1)
                return;
            for (const sim::Tick when : inbox) {
                // The conservative invariant the whole design rests
                // on: the receiver's clock has not passed the
                // delivery tick when the barrier schedules it.
                EXPECT_GE(when, q1.now());
                q1.schedule(when,
                            [&delivered, &q1] { delivered = q1.now(); });
            }
            inbox.clear();
        });
    const sim::Tick end = r.run();

    EXPECT_EQ(delivered, hop);
    EXPECT_EQ(end, hop);
    // Epoch 1 = [0, hop] runs the send; the delivery lands exactly
    // on the boundary and must execute in epoch 2, not epoch 1.
    EXPECT_EQ(r.stats().epochs, 2u);
}

TEST(EpochRunner, OversubscriptionIsInvisible)
{
    // 4 partitions on 1, 2 (oversubscribed) and 8 (clamped) workers:
    // identical per-partition schedules, identical final clock.
    constexpr unsigned nq = 4;
    std::vector<std::vector<sim::Tick>> ref;
    sim::Tick refEnd = 0;

    for (const unsigned threads : {1u, 2u, 8u}) {
        std::vector<sim::EventQueue> qs(nq);
        // One log per partition, written only by its owning worker.
        std::vector<std::vector<sim::Tick>> logs(nq);
        for (unsigned d = 0; d < nq; ++d) {
            for (unsigned i = 0; i < 50; ++i) {
                const sim::Tick t = d * 3 + i * 97;
                qs[d].schedule(t, [&logs, d, t] {
                    logs[d].push_back(t);
                });
            }
        }
        std::vector<sim::EventQueue *> qp;
        for (auto &q : qs)
            qp.push_back(&q);

        sim::ParallelParams pp;
        pp.threads = threads;
        pp.lookahead = hop;
        sim::EpochRunner r(std::move(qp), pp, noDrain);
        EXPECT_EQ(r.workers(), std::min(threads, nq));
        const sim::Tick end = r.run();

        if (threads == 1) {
            ref = logs;
            refEnd = end;
        } else {
            EXPECT_EQ(logs, ref)
                << threads << " workers diverged from serial";
            EXPECT_EQ(end, refEnd);
        }
    }
}

TEST(EpochRunner, IdleGapsAreSkippedNotMarched)
{
    sim::EventQueue q0, q1; // q1 stays empty throughout
    bool late = false;
    q0.schedule(0, [] {});
    q0.schedule(10'000'000, [&late] { late = true; });

    sim::ParallelParams pp;
    pp.threads = 1;
    pp.lookahead = 1'000;
    sim::EpochRunner r({&q0, &q1}, pp, noDrain);
    r.run();

    EXPECT_TRUE(late);
    EXPECT_GE(r.stats().idleSkips, 1u);
    // Lockstep marching would need ~10'000 epochs; the window scan
    // must jump the gap in a handful (a few extra while a coarse
    // wheel bound refines).
    EXPECT_LE(r.stats().epochs, 10u);
}

TEST(EpochRunner, EmptyBoardFinishesImmediately)
{
    sim::EventQueue q0, q1;
    sim::ParallelParams pp;
    pp.threads = 2;
    pp.lookahead = hop;
    sim::EpochRunner r({&q0, &q1}, pp, noDrain);
    EXPECT_EQ(r.run(), 0u);
    EXPECT_EQ(r.stats().epochs, 0u);
}

TEST(EpochRunner, BoundedRunParksEveryClockOnTheLimit)
{
    sim::EventQueue q0, q1;
    q0.schedule(100, [] {});
    q1.schedule(5'000'000, [] {}); // beyond the bound

    sim::ParallelParams pp;
    pp.threads = 1;
    pp.lookahead = hop;
    sim::EpochRunner r({&q0, &q1}, pp, noDrain);
    const sim::Tick end = r.run(1'000'000);

    EXPECT_EQ(end, 1'000'000u);
    EXPECT_EQ(q0.now(), 1'000'000u);
    EXPECT_EQ(q1.now(), 1'000'000u);
    EXPECT_EQ(q1.pending(), 1u) << "the future event must survive";
}

TEST(NextDueLowerBound, BoundsAndRefines)
{
    sim::EventQueue q;
    EXPECT_EQ(q.nextDueLowerBound(), sim::maxTick);

    q.schedule(5, [] {});
    EXPECT_EQ(q.nextDueLowerBound(), 5u) << "level-0 bound is exact";

    q.schedule(1'000'000, [] {});
    EXPECT_EQ(q.nextDueLowerBound(), 5u);

    q.runWindow(5); // consume the first event
    const sim::Tick lb = q.nextDueLowerBound();
    EXPECT_GT(lb, 5u);
    EXPECT_LE(lb, 1'000'000u) << "a lower bound, never beyond";

    // Running an empty window up to the bound refines it (the wheel
    // cascades); within a few refinements it must become exact.
    sim::Tick cur = lb;
    for (unsigned i = 0; i < 8 && cur < 1'000'000u; ++i) {
        q.runWindow(cur);
        const sim::Tick next = q.nextDueLowerBound();
        EXPECT_GE(next, cur) << "bounds may only tighten";
        cur = next;
    }
    EXPECT_EQ(cur, 1'000'000u);

    // Far-heap residents bound exactly by the heap front.
    sim::EventQueue far;
    far.schedule(sim::Tick(1) << 40, [] {});
    EXPECT_EQ(far.nextDueLowerBound(), sim::Tick(1) << 40);
}

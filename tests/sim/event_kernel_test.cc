/**
 * @file
 * Event-kernel regression tests: the bounded-run clock fix, the
 * schedule-from-callback-at-current-tick fix, pool growth/reuse,
 * the wheel/overflow-heap boundary, PeriodicEvent lifecycle, the
 * intrusive API, and large-scale same-tick FIFO determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/event.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats_registry.hh"

using dpu::sim::Event;
using dpu::sim::EventQueue;
using dpu::sim::EvTag;
using dpu::sim::PeriodicEvent;
using dpu::sim::Tick;

namespace {

/** Minimal intrusive event that appends a label when it fires. */
class MarkEvent final : public Event
{
  public:
    MarkEvent(std::vector<std::string> &log_, std::string label_,
              EvTag tag = EvTag::Generic)
        : Event(tag), log(log_), label(std::move(label_))
    {
    }
    void process() override { log.push_back(label); }
    const char *name() const override { return label.c_str(); }

  private:
    std::vector<std::string> &log;
    std::string label;
};

} // namespace

// ----------------------------------------------------------------
// Satellite 1: run(limit) must land the clock exactly on the limit
// whenever execution stops at the bound — including when events
// remain beyond it. (The old queue left now() at the last executed
// event, so quantum-stepped callers saw time stand still.)
// ----------------------------------------------------------------

TEST(EventKernel, BoundedRunAdvancesClockWithEventsPendingBeyond)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(5000, [&] { ++fired; });

    eq.run(1000);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 1000u); // not stuck at tick 10
    EXPECT_EQ(eq.pending(), 1u);

    // A window containing no events still advances the clock.
    eq.run(2000);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 2000u);

    // The remaining event is intact and fires at its original time.
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 5000u);
}

TEST(EventKernel, BoundedRunAdvancesClockOnEmptyQueue)
{
    EventQueue eq;
    EXPECT_EQ(eq.run(777), 0u);
    EXPECT_EQ(eq.now(), 777u);
}

// ----------------------------------------------------------------
// Satellite 2: scheduling at the *current* tick from inside a
// running callback must enqueue behind the pending same-tick events
// and fire this tick. (The old priority_queue implementation moved
// out of top() mid-iteration; a reentrant push could reallocate the
// heap under it.)
// ----------------------------------------------------------------

TEST(EventKernel, ScheduleAtCurrentTickFromCallbackRunsThisTick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(100, [&] {
        order.push_back(0);
        // Many reentrant same-tick schedules: enough to force the
        // old heap to grow mid-callback.
        for (int i = 1; i <= 64; ++i)
            eq.schedule(eq.now(), [&order, i] { order.push_back(i); });
    });
    bool later = false;
    eq.schedule(101, [&] {
        later = true;
        // Everything scheduled for tick 100 ran before tick 101.
        EXPECT_EQ(order.size(), 65u);
    });

    eq.run();
    ASSERT_EQ(order.size(), 65u);
    for (int i = 0; i < 65; ++i)
        EXPECT_EQ(order[i], i) << "position " << i;
    EXPECT_TRUE(later);
    EXPECT_EQ(eq.now(), 101u);
}

TEST(EventKernel, ReentrantSameTickScheduleInterleavesWithPending)
{
    EventQueue eq;
    std::vector<std::string> order;
    // a and b are both pending at tick 50 before either runs; a
    // schedules c at the same tick. FIFO demands a, b, c.
    eq.schedule(50, [&] {
        order.push_back("a");
        eq.schedule(50, [&] { order.push_back("c"); });
    });
    eq.schedule(50, [&] { order.push_back("b"); });
    eq.run();
    EXPECT_EQ(order,
              (std::vector<std::string>{"a", "b", "c"}));
}

// ----------------------------------------------------------------
// Satellite 3a: callback pool growth under load, reuse after.
// ----------------------------------------------------------------

TEST(EventKernel, PoolGrowsUnderLoadAndReusesAfterDraining)
{
    EventQueue eq;
    // More simultaneously-pending callbacks than one 256-event slab.
    const unsigned burst = 700;
    unsigned fired = 0;
    for (unsigned i = 0; i < burst; ++i)
        eq.schedule(Tick(10 + i), [&] { ++fired; });
    EXPECT_GE(eq.profile().poolSlabs, 3u);
    EXPECT_GE(eq.profile().poolEvents, burst);

    eq.run();
    EXPECT_EQ(fired, burst);

    // Sequential traffic recycles the free list: no further growth
    // no matter how many events flow through.
    const std::uint64_t slabs = eq.profile().poolSlabs;
    for (unsigned i = 0; i < 10000; ++i) {
        eq.scheduleIn(1, [&] { ++fired; });
        eq.run();
    }
    EXPECT_EQ(fired, burst + 10000);
    EXPECT_EQ(eq.profile().poolSlabs, slabs);
}

// ----------------------------------------------------------------
// Satellite 3b: timing-wheel vs overflow-heap boundary. Events more
// than 2^32 ticks out go to the heap; FIFO order must still be
// exact when wheel- and heap-resident events share a tick.
// ----------------------------------------------------------------

TEST(EventKernel, FarEventsUseOverflowHeapAndFireInOrder)
{
    EventQueue eq;
    const Tick horizon = Tick(1) << 32;
    std::vector<std::string> order;

    eq.schedule(horizon + 5, [&] { order.push_back("far"); });
    eq.schedule(3, [&] { order.push_back("near"); });
    eq.schedule(horizon * 3, [&] { order.push_back("farther"); });

    EXPECT_GE(eq.profile().heapInserts, 2u);
    eq.run();
    EXPECT_EQ(order, (std::vector<std::string>{"near", "far",
                                               "farther"}));
    EXPECT_EQ(eq.now(), horizon * 3);
}

TEST(EventKernel, SameTickFifoSpansWheelAndHeap)
{
    EventQueue eq;
    const Tick when = (Tick(1) << 32) + 123456;
    std::vector<std::string> order;

    // Scheduled from tick 0: beyond the horizon, lands in the heap
    // with the earliest sequence number at `when`.
    eq.schedule(when, [&] { order.push_back("heap-first"); });
    // Scheduled from close by: within the horizon, lands in the
    // wheel with a later sequence number at the same tick.
    eq.schedule(when - 8, [&] {
        eq.schedule(when, [&] { order.push_back("wheel-second"); });
    });

    EXPECT_GE(eq.profile().heapInserts, 1u);
    eq.run();
    EXPECT_EQ(order, (std::vector<std::string>{"heap-first",
                                               "wheel-second"}));
}

TEST(EventKernel, MultiLevelCascadesPreserveOrder)
{
    EventQueue eq;
    // One event per wheel level (digit widths are 8 bits), plus two
    // same-tick events on an outer level to check FIFO survives the
    // cascade to level 0.
    std::vector<Tick> fireTimes;
    const Tick deep = Tick(7) << 24; // level 3
    eq.schedule(Tick(5), [&] { fireTimes.push_back(eq.now()); });
    eq.schedule(Tick(3) << 8, [&] { fireTimes.push_back(eq.now()); });
    eq.schedule(Tick(9) << 16, [&] { fireTimes.push_back(eq.now()); });
    std::vector<std::string> deepOrder;
    eq.schedule(deep, [&] {
        fireTimes.push_back(eq.now());
        deepOrder.push_back("first");
    });
    eq.schedule(deep, [&] { deepOrder.push_back("second"); });

    eq.run();
    EXPECT_GE(eq.profile().cascades, 3u);
    EXPECT_TRUE(std::is_sorted(fireTimes.begin(), fireTimes.end()));
    EXPECT_EQ(fireTimes.back(), deep);
    EXPECT_EQ(deepOrder, (std::vector<std::string>{"first",
                                                   "second"}));
}

// ----------------------------------------------------------------
// Satellite 3c: PeriodicEvent fire / cancel / re-arm.
// ----------------------------------------------------------------

TEST(EventKernel, PeriodicEventFiresCancelsAndRearms)
{
    EventQueue eq;
    int fires = 0;
    PeriodicEvent *self = nullptr;
    PeriodicEvent ticker(eq, 10, [&] {
        if (++fires % 3 == 0)
            self->cancel(); // stop so run() can drain
    });
    self = &ticker;

    EXPECT_FALSE(ticker.active());
    ticker.start(10);
    EXPECT_TRUE(ticker.active());
    eq.run();
    EXPECT_EQ(fires, 3);
    EXPECT_EQ(eq.now(), 30u); // 10, 20, 30
    EXPECT_FALSE(ticker.active());

    // Re-arm after cancel, with a new period.
    ticker.setPeriod(5);
    EXPECT_EQ(ticker.period(), 5u);
    ticker.startIn(5);
    eq.run();
    EXPECT_EQ(fires, 6);
    EXPECT_EQ(eq.now(), 45u); // 35, 40, 45
    EXPECT_FALSE(ticker.active());

    // cancel() when already idle is a no-op.
    ticker.cancel();
    EXPECT_FALSE(ticker.active());
}

// ----------------------------------------------------------------
// Intrusive API: deschedule, reschedule, destructor unlink.
// ----------------------------------------------------------------

TEST(EventKernel, IntrusiveDescheduleAndReschedule)
{
    EventQueue eq;
    std::vector<std::string> log;
    MarkEvent ev(log, "ev");

    eq.schedule(100, ev);
    EXPECT_TRUE(ev.scheduled());
    EXPECT_EQ(ev.when(), 100u);
    eq.deschedule(ev);
    EXPECT_FALSE(ev.scheduled());
    eq.run();
    EXPECT_TRUE(log.empty());
    EXPECT_EQ(eq.pending(), 0u);

    eq.schedule(200, ev);
    eq.reschedule(300, ev); // moves, does not duplicate
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"ev"}));
    EXPECT_EQ(eq.now(), 300u);
    EXPECT_FALSE(ev.scheduled());
}

TEST(EventKernel, DestroyingScheduledEventUnlinksIt)
{
    EventQueue eq;
    std::vector<std::string> log;
    {
        MarkEvent doomed(log, "doomed");
        eq.schedule(50, doomed);
        EXPECT_EQ(eq.pending(), 1u);
    } // destructor must deschedule
    EXPECT_EQ(eq.pending(), 0u);
    eq.run();
    EXPECT_TRUE(log.empty());

    // Far (heap-resident) events unlink from the destructor too.
    {
        MarkEvent farDoomed(log, "far");
        eq.schedule((Tick(1) << 32) + 99, farDoomed);
    }
    EXPECT_EQ(eq.pending(), 0u);
    eq.run();
    EXPECT_TRUE(log.empty());
}

// ----------------------------------------------------------------
// Satellite 3d: large-scale same-tick FIFO determinism. 10k
// randomly interleaved schedules across a handful of ticks, mixing
// pooled callbacks and intrusive events; execution order must equal
// insertion order per tick, twice over.
// ----------------------------------------------------------------

namespace {

std::vector<std::pair<Tick, unsigned>>
runInterleavedWorkload(std::uint64_t seed)
{
    dpu::sim::Rng rng(seed);
    EventQueue eq;

    static const Tick ticks[4] = {1000, 2000, 3000, 4000};

    /** Intrusive participant: records (tick, insertion index). */
    class RecordEvent final : public Event
    {
      public:
        std::vector<std::pair<Tick, unsigned>> *out = nullptr;
        Tick tick = 0;
        unsigned idx = 0;
        void process() override { out->push_back({tick, idx}); }
    };

    std::vector<std::pair<Tick, unsigned>> fired;
    std::vector<std::unique_ptr<RecordEvent>> intrusives;
    unsigned perTick[4] = {0, 0, 0, 0};

    for (unsigned i = 0; i < 10000; ++i) {
        const unsigned t = unsigned(rng.below(4));
        const Tick when = ticks[t];
        const unsigned idx = perTick[t]++;
        if (rng.below(3) == 0) {
            auto ev = std::make_unique<RecordEvent>();
            ev->out = &fired;
            ev->tick = when;
            ev->idx = idx;
            eq.schedule(when, *ev);
            intrusives.push_back(std::move(ev));
        } else {
            eq.schedule(when, [&fired, when, idx] {
                fired.push_back({when, idx});
            });
        }
    }
    eq.run();
    return fired;
}

} // namespace

TEST(EventKernel, TenThousandInterleavedSameTickSchedulesAreFifo)
{
    const auto fired = runInterleavedWorkload(42);
    ASSERT_EQ(fired.size(), 10000u);

    // Within each tick, insertion indices come out 0, 1, 2, ...;
    // across ticks, times are non-decreasing.
    Tick lastTick = 0;
    unsigned expectedIdx = 0;
    for (const auto &[when, idx] : fired) {
        ASSERT_GE(when, lastTick);
        if (when != lastTick) {
            lastTick = when;
            expectedIdx = 0;
        }
        ASSERT_EQ(idx, expectedIdx) << "at tick " << when;
        ++expectedIdx;
    }

    // Bit-identical on a second run: same seed, same order.
    EXPECT_EQ(fired, runInterleavedWorkload(42));
}

// ----------------------------------------------------------------
// Wheel-base consistency. The base must never advance past a tick
// at which control can return to scheduling code (a run() bound or
// the overflow heap's front): a later legal schedule below a
// runaway base would be placed against stale digits and fire out
// of order. These pin the invariant wheelBase <= now().
// ----------------------------------------------------------------

TEST(EventKernel, ScheduleEarlierThanPendingAfterBoundedRunFiresFirst)
{
    EventQueue eq;
    std::vector<Tick> order;
    eq.schedule(5000, [&] { order.push_back(eq.now()); });

    // The bounded run pops nothing, but the search for the next
    // event must not drag the wheel base toward tick 5000.
    eq.run(1000);
    EXPECT_EQ(eq.now(), 1000u);

    // Scheduling below the pending event (legal: 1500 >= now) must
    // fire first, and now() must stay monotonic across both.
    eq.schedule(1500, [&] { order.push_back(eq.now()); });
    eq.run();
    EXPECT_EQ(order, (std::vector<Tick>{1500, 5000}));
    EXPECT_EQ(eq.now(), 5000u);
}

TEST(EventKernel, HeapFrontNearerThanWheelEventDoesNotSkewBase)
{
    EventQueue eq;
    const Tick h = Tick(1) << 32;
    std::vector<Tick> order;

    // Heap-resident from tick 0 (3h is beyond the horizon)...
    eq.schedule(3 * h + 5, [&] {
        order.push_back(eq.now());
        // ...and its callback schedules nearby: the wheel event at
        // 3h+70000 is still pending, so the base must not have
        // advanced past 3h+15 while popping the heap front.
        eq.scheduleIn(10, [&] { order.push_back(eq.now()); });
    });
    EXPECT_EQ(eq.profile().heapInserts, 1u);

    eq.run(3 * h); // park the clock past the heap entry's horizon
    // ...then a wheel event *after* the heap front but on an outer
    // wheel level, so finding it wants a multi-level base advance.
    eq.schedule(3 * h + 70000, [&] { order.push_back(eq.now()); });
    EXPECT_EQ(eq.profile().heapInserts, 1u); // wheel, not heap

    eq.run();
    EXPECT_EQ(order,
              (std::vector<Tick>{3 * h + 5, 3 * h + 15,
                                 3 * h + 70000}));
    EXPECT_EQ(eq.now(), 3 * h + 70000);
}

TEST(EventKernel, QuantumSteppedRunsWithLateSchedulesStayOrdered)
{
    // Model-based: interleave bounded runs (the Soc::runFor shape)
    // with schedules issued between quanta — same-quantum deltas,
    // outer wheel levels, and past-the-horizon heap entries — and
    // require the exact global (when, insertion) order.
    dpu::sim::Rng rng(1234);
    EventQueue eq;
    std::vector<std::pair<Tick, unsigned>> expected;
    std::vector<std::pair<Tick, unsigned>> fired;
    unsigned id = 0;
    Tick quantumEnd = 0;

    for (int round = 0; round < 200; ++round) {
        const unsigned n = 1 + unsigned(rng.below(8));
        for (unsigned k = 0; k < n; ++k) {
            Tick delta = 0;
            switch (rng.below(4)) {
              case 0: delta = rng.below(64); break;
              case 1: delta = rng.below(100000); break;
              case 2: delta = (Tick(1) << 30) + rng.below(4096); break;
              default:
                delta = (Tick(1) << 32) + rng.below(1u << 20);
            }
            const Tick when = eq.now() + delta;
            expected.push_back({when, id});
            eq.schedule(when, [&fired, when, evId = id] {
                fired.push_back({when, evId});
            });
            ++id;
        }
        quantumEnd += 50000 + rng.below(100000);
        eq.run(quantumEnd);
        ASSERT_EQ(eq.now(), quantumEnd) << "round " << round;
    }
    eq.run();

    // Ids increase in schedule order, so a stable sort by time is
    // the exact (when, seq) reference order.
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    EXPECT_EQ(fired, expected);
}

// ----------------------------------------------------------------
// The wheel past the 2^32-tick horizon: an empty wheel resyncs its
// base to the clock on the next schedule, so long runs keep O(1)
// wheel placement forever instead of silently degenerating to the
// overflow heap.
// ----------------------------------------------------------------

TEST(EventKernel, WheelResyncsPastThe32BitHorizon)
{
    EventQueue eq;
    const Tick h = Tick(1) << 32;
    int jumps = 0;
    eq.schedule(3 * h + 17, [&] { ++jumps; }); // heap: beyond horizon
    eq.run();
    EXPECT_EQ(jumps, 1);
    EXPECT_EQ(eq.now(), 3 * h + 17);

    // Short-delta traffic far beyond the original horizon must stay
    // on the wheel and stay ordered.
    const std::uint64_t heapBefore = eq.profile().heapInserts;
    std::vector<Tick> times;
    for (int burst = 0; burst < 16; ++burst) {
        for (int i = 0; i < 32; ++i)
            eq.scheduleIn(Tick(1 + i * 7),
                          [&] { times.push_back(eq.now()); });
        eq.run();
    }
    EXPECT_EQ(eq.profile().heapInserts, heapBefore);
    EXPECT_EQ(times.size(), 16u * 32u);
    EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
}

TEST(EventKernel, PeriodicTickerCrossesHorizonOnTheWheel)
{
    EventQueue eq;
    const Tick h = Tick(1) << 32;
    eq.run(h - 250); // park the clock just below the horizon

    int fires = 0;
    PeriodicEvent ticker(eq, 100, [&] { ++fires; });
    ticker.startIn(100);
    eq.run(h + 750);
    EXPECT_EQ(eq.now(), h + 750);
    EXPECT_EQ(fires, 10); // h-150, h-50, ..., h+750
    // Exactly one re-arm straddles the 2^32 boundary (base h-50,
    // target h+50: their XOR sets bit 32) and transits the heap;
    // every other re-arm resyncs an empty wheel and stays on it.
    // A frozen base would instead send all post-crossing re-arms
    // to the heap.
    EXPECT_EQ(eq.profile().heapInserts, 1u);
    ticker.cancel();
}

// ----------------------------------------------------------------
// Heap residents deschedule via their stored heap index; scattered
// deschedules and reschedules must leave an exact heap behind.
// ----------------------------------------------------------------

TEST(EventKernel, FarHeapDescheduleByIndexKeepsHeapConsistent)
{
    EventQueue eq;
    const Tick h = Tick(1) << 32;

    class IdEvent final : public Event
    {
      public:
        std::vector<unsigned> *out = nullptr;
        unsigned id = 0;
        void process() override { out->push_back(id); }
    };

    std::vector<unsigned> firedIds;
    std::vector<std::unique_ptr<IdEvent>> evs;
    for (unsigned i = 0; i < 300; ++i) {
        auto ev = std::make_unique<IdEvent>();
        ev->out = &firedIds;
        ev->id = i;
        eq.schedule(h + 1000 + i * 3, *ev);
        evs.push_back(std::move(ev));
    }
    EXPECT_EQ(eq.profile().heapInserts, 300u);

    // Deschedule every third (arbitrary interior heap slots), then
    // reschedule every seventh to an earlier far tick — including
    // some just-descheduled ones, which re-enter.
    std::vector<bool> sched(300, true), moved(300, false);
    for (unsigned i = 0; i < 300; i += 3) {
        eq.deschedule(*evs[i]);
        sched[i] = false;
    }
    for (unsigned i = 1; i < 300; i += 7) {
        eq.reschedule(h + 500 + i, *evs[i]);
        sched[i] = true;
        moved[i] = true;
    }

    eq.run();

    std::vector<unsigned> expected;
    for (unsigned i = 1; i < 300; i += 7) // h+500+i, ascending in i
        if (moved[i])
            expected.push_back(i);
    for (unsigned i = 0; i < 300; ++i) // then h+1000+3i
        if (sched[i] && !moved[i])
            expected.push_back(i);
    EXPECT_EQ(firedIds, expected);
    EXPECT_EQ(eq.pending(), 0u);
}

// ----------------------------------------------------------------
// Self-profiler: per-tag counts, lazy stats publication.
// ----------------------------------------------------------------

TEST(EventKernel, ProfilerAttributesExecutionByTag)
{
    EventQueue eq;
    eq.schedule(1, [] {}, EvTag::Ate);
    eq.schedule(2, [] {}, EvTag::Ate);
    eq.schedule(3, [] {}, EvTag::Dms);
    std::vector<std::string> log;
    MarkEvent core(log, "core.tick", EvTag::Core);
    eq.schedule(4, core);
    eq.run();

    const auto &prof = eq.profile();
    EXPECT_EQ(prof.executed[unsigned(EvTag::Ate)], 2u);
    EXPECT_EQ(prof.executed[unsigned(EvTag::Dms)], 1u);
    EXPECT_EQ(prof.executed[unsigned(EvTag::Core)], 1u);
    EXPECT_EQ(prof.totalExecuted(), 4u);
    EXPECT_EQ(prof.schedules, 4u);
    EXPECT_GE(prof.maxPending, 4u);
}

TEST(EventKernel, PublishStatsIsLazyAndExportsCounters)
{
    using dpu::sim::StatsRegistry;
    using dpu::sim::StatsSnapshot;

    auto countEventqKeys = [](const StatsSnapshot &s) {
        std::size_t n = 0;
        for (const auto &[k, v] : s.counters)
            n += k.rfind("eventq.", 0) == 0;
        return n;
    };

    EventQueue eq;
    eq.schedule(1, [] {}, EvTag::Mbc);
    eq.run();

    // Until publishStats() opts in, the registry has no "eventq"
    // group — golden snapshots of the modelled chip stay clean.
    EXPECT_EQ(countEventqKeys(StatsRegistry::instance().snapshot()),
              0u);

    eq.publishStats();
    StatsSnapshot snap = StatsRegistry::instance().snapshot();
    EXPECT_GT(countEventqKeys(snap), 0u);
    EXPECT_EQ(snap.counters.at("eventq.executed"), 1u);
    EXPECT_EQ(snap.counters.at("eventq.executed.mbc"), 1u);
    EXPECT_EQ(snap.counters.at("eventq.schedules"), 1u);
}

/**
 * @file
 * Unit tests for StatGroup accessors, dump()/reset() ordering, the
 * StatsRegistry snapshot, and snapshot JSON round-tripping.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"
#include "sim/stats_registry.hh"

using namespace dpu::sim;

TEST(StatGroup, CounterAndScalarAccessors)
{
    StatGroup g("g");
    g.counter("hits") = 7;
    g.counter("hits") += 3;
    g.scalar("ratio") = 0.25;

    EXPECT_EQ(g.get("hits"), 10u);
    EXPECT_EQ(g.get("absent"), 0u);
    EXPECT_DOUBLE_EQ(g.getScalar("ratio"), 0.25);
    EXPECT_DOUBLE_EQ(g.getScalar("absent"), 0.0);
}

TEST(StatGroup, DumpIsNameOrderedCountersThenScalars)
{
    StatGroup g("grp");
    g.counter("zeta") = 1;
    g.counter("alpha") = 2;
    g.scalar("mid") = 1.5;

    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(),
              "grp.alpha = 2\n"
              "grp.zeta = 1\n"
              "grp.mid = 1.5\n");

    // A second dump after reset keeps the cells (zeroed), in the
    // same order — reset must not unregister anything.
    g.reset();
    std::ostringstream os2;
    g.dump(os2);
    EXPECT_EQ(os2.str(),
              "grp.alpha = 0\n"
              "grp.zeta = 0\n"
              "grp.mid = 0\n");
}

TEST(StatsRegistry, SnapshotCoversLiveGroupsOnly)
{
    const std::size_t before =
        StatsRegistry::instance().groupCount();
    StatsSnapshot outer;
    {
        StatGroup g("reg_test");
        g.counter("x") = 42;
        EXPECT_EQ(StatsRegistry::instance().groupCount(), before + 1);
        outer = StatsRegistry::instance().snapshot();
    }
    EXPECT_EQ(StatsRegistry::instance().groupCount(), before);
    EXPECT_EQ(outer.counters.at("reg_test.x"), 42u);
    // After destruction the group must vanish from new snapshots.
    StatsSnapshot after = StatsRegistry::instance().snapshot();
    EXPECT_EQ(after.counters.count("reg_test.x"), 0u);
}

TEST(StatsRegistry, DuplicateGroupNamesAreDisambiguated)
{
    StatGroup a("dup");
    StatGroup b("dup");
    a.counter("n") = 1;
    b.counter("n") = 2;
    StatsSnapshot snap = StatsRegistry::instance().snapshot();
    EXPECT_EQ(snap.counters.at("dup.n"), 1u);
    EXPECT_EQ(snap.counters.at("dup#1.n"), 2u);
}

TEST(StatsSnapshot, JsonRoundTrip)
{
    StatsSnapshot snap;
    snap.counters["a.big"] = 0xffffffffffffull; // > 2^32, exercises exactness
    snap.counters["a.zero"] = 0;
    snap.scalars["b.pi"] = 3.141592653589793;
    snap.scalars["b.neg"] = -0.5;
    snap.scalars["b.whole"] = 3.0;

    std::ostringstream os;
    snap.writeJson(os);

    StatsSnapshot back;
    std::string err;
    ASSERT_TRUE(StatsSnapshot::readJson(os.str(), back, err)) << err;
    EXPECT_TRUE(snap == back);
}

TEST(StatsSnapshot, ReadRejectsMalformedInput)
{
    StatsSnapshot out;
    std::string err;
    EXPECT_FALSE(StatsSnapshot::readJson("{", out, err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(StatsSnapshot::readJson("[]", out, err));
    EXPECT_FALSE(StatsSnapshot::readJson(
        "{\"counters\": {\"k\": -1}, \"scalars\": {}}", out, err));
    EXPECT_FALSE(StatsSnapshot::readJson(
        "{\"counters\": {\"k\": \"str\"}}", out, err));
}

TEST(StatsSnapshot, DiffFindsDriftMissingAndExtra)
{
    StatsSnapshot golden, actual;
    golden.counters["g.same"] = 5;
    golden.counters["g.drift"] = 100;
    golden.counters["g.gone"] = 1;
    golden.scalars["g.close"] = 1.0;
    actual.counters["g.same"] = 5;
    actual.counters["g.drift"] = 101;
    actual.counters["g.new"] = 9;
    actual.scalars["g.close"] = 1.0 + 1e-12; // inside 1e-9 rel tol

    auto diffs = diffSnapshots(golden, actual);
    ASSERT_EQ(diffs.size(), 3u);
    // Map order: drift < gone < new.
    EXPECT_EQ(diffs[0].key, "g.drift");
    EXPECT_EQ(diffs[0].kind, "drift");
    EXPECT_EQ(diffs[1].key, "g.gone");
    EXPECT_EQ(diffs[1].kind, "missing");
    EXPECT_EQ(diffs[2].key, "g.new");
    EXPECT_EQ(diffs[2].kind, "extra");

    EXPECT_FALSE(formatDiffs(diffs).empty());
}

TEST(StatsSnapshot, DiffHonoursPrefixTolerances)
{
    StatsSnapshot golden, actual;
    golden.counters["noisy.t"] = 1000;
    actual.counters["noisy.t"] = 1004;

    EXPECT_EQ(diffSnapshots(golden, actual).size(), 1u);

    DiffOptions opts;
    opts.prefixRel.emplace_back("noisy.", 0.01);
    EXPECT_TRUE(diffSnapshots(golden, actual, opts).empty());
}

/**
 * @file
 * Unit tests for the event tracer: ring/drop accounting, arming,
 * and well-formedness of the exported Chrome trace-event JSON
 * (parsed back with the in-tree JSON reader).
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <utility>

#include "sim/domain.hh"
#include "sim/json.hh"
#include "sim/trace.hh"

using namespace dpu::sim;

namespace {

/** Fixture that leaves the process-wide tracer clean afterwards. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!DPU_TRACING)
            GTEST_SKIP() << "built with -DDPU_TRACING=0";
    }

    void
    TearDown() override
    {
        tracer().disarm();
        tracer().clear();
    }

    /** Export, parse, and return the traceEvents array. */
    const json::Value &
    exportEvents()
    {
        static const json::Value empty;
        std::ostringstream os;
        tracer().exportJson(os);
        std::string err;
        if (!json::parse(os.str(), doc, err)) {
            ADD_FAILURE() << "trace JSON does not parse: " << err;
            return empty;
        }
        const json::Value *ev = doc.find("traceEvents");
        if (!ev || ev->kind != json::Value::Kind::Array) {
            ADD_FAILURE() << "missing traceEvents array";
            return empty;
        }
        return *ev;
    }

    json::Value doc;
};

std::string
str(const json::Value &obj, const char *key)
{
    const json::Value *v = obj.find(key);
    return v && v->kind == json::Value::Kind::String ? v->s
                                                     : std::string();
}

} // namespace

TEST_F(TraceTest, DisarmedRecordIsANoOp)
{
    ASSERT_FALSE(tracer().armed());
    DPU_TRACE_INSTANT(TraceCat::Core, 0, "ignored", 10, nullptr, 0);
    EXPECT_EQ(tracer().size(), 0u);
}

TEST_F(TraceTest, RingOverwritesOldestAndCountsDrops)
{
    tracer().arm(4);
    for (int i = 0; i < 6; ++i)
        DPU_TRACE_INSTANT(TraceCat::Core, 0, "tick", Tick(i), "n",
                          std::uint64_t(i));
    EXPECT_EQ(tracer().size(), 4u);
    EXPECT_EQ(tracer().dropped(), 2u);

    // Export must contain only the newest four records (ts 2..5).
    const json::Value &events = exportEvents();
    std::vector<double> ts;
    for (const auto &e : events.arr)
        if (str(e, "ph") == "i")
            ts.push_back(e.find("ts")->asDouble() * 1e6); // us -> ps
    ASSERT_EQ(ts.size(), 4u);
    EXPECT_DOUBLE_EQ(ts.front(), 2.0);
    EXPECT_DOUBLE_EQ(ts.back(), 5.0);

    tracer().clear();
    EXPECT_EQ(tracer().size(), 0u);
    EXPECT_EQ(tracer().dropped(), 0u);
}

TEST_F(TraceTest, DisarmStopsRecordingButKeepsRing)
{
    tracer().arm(16);
    DPU_TRACE_INSTANT(TraceCat::Core, 0, "kept", 1, nullptr, 0);
    tracer().disarm();
    DPU_TRACE_INSTANT(TraceCat::Core, 0, "lost", 2, nullptr, 0);
    EXPECT_EQ(tracer().size(), 1u);
}

TEST_F(TraceTest, SpanIdsAreUniqueAndNonZero)
{
    std::uint32_t a = tracer().nextId();
    std::uint32_t b = tracer().nextId();
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_NE(a, b);
}

TEST_F(TraceTest, ExportedJsonIsWellFormed)
{
    tracer().arm(256);
    tracer().nameTrack(TraceCat::Dms, 7, "dmad7");

    // Two overlapping async spans on one track, an 'X', an instant
    // and a counter — deliberately recorded out of timestamp order
    // to exercise the exporter's sort.
    std::uint32_t s1 = tracer().nextId();
    std::uint32_t s2 = tracer().nextId();
    DPU_TRACE_SPAN_BEGIN(TraceCat::Dms, 7, "DdrToDmem", s1, 100,
                         "bytes", 1024, nullptr, 0);
    DPU_TRACE_SPAN_BEGIN(TraceCat::Dms, 7, "DdrToDmem", s2, 150,
                         "bytes", 1024, nullptr, 0);
    DPU_TRACE_SPAN_END(TraceCat::Dms, 7, "DdrToDmem", s1, 300);
    DPU_TRACE_COMPLETE(TraceCat::Ddr, 0, "read", 50, 25, "bytes", 64,
                       nullptr, 0);
    DPU_TRACE_SPAN_END(TraceCat::Dms, 7, "DdrToDmem", s2, 400);
    DPU_TRACE_INSTANT(TraceCat::Core, 3, "evSet", 120, "event", 5);
    DPU_TRACE_COUNTER(TraceCat::Ddr, 0, "rowBuffer", 200, "hits", 9,
                      "misses", 1);

    const json::Value &events = exportEvents();

    // (a) every async begin pairs with exactly one end (cat+id key),
    // and the end never precedes its begin.
    std::map<std::pair<std::string, std::uint64_t>, int> open;
    // (b) timestamps per (pid, tid) track are monotone.
    std::map<std::pair<std::uint64_t, std::uint64_t>, double> lastTs;
    bool sawThreadName = false;

    for (const auto &e : events.arr) {
        const std::string ph = str(e, "ph");
        ASSERT_FALSE(ph.empty());
        if (ph == "M") {
            if (str(e, "name") == "thread_name" &&
                e.find("tid")->asU64() == 7) {
                const json::Value *args = e.find("args");
                ASSERT_NE(args, nullptr);
                EXPECT_EQ(str(*args, "name"), "dmad7");
                sawThreadName = true;
            }
            continue;
        }
        ASSERT_NE(e.find("ts"), nullptr);
        const double ts = e.find("ts")->asDouble();
        auto track = std::make_pair(e.find("pid")->asU64(),
                                    e.find("tid")->asU64());
        auto it = lastTs.find(track);
        if (it != lastTs.end()) {
            EXPECT_GE(ts, it->second);
        }
        lastTs[track] = ts;

        if (ph == "b" || ph == "e") {
            auto key = std::make_pair(str(e, "cat"),
                                      e.find("id")->asU64());
            if (ph == "b") {
                ++open[key];
            } else {
                ASSERT_GT(open[key], 0)
                    << "'e' before matching 'b' for id " << key.second;
                --open[key];
            }
        } else if (ph == "X") {
            ASSERT_NE(e.find("dur"), nullptr);
        } else if (ph == "i") {
            EXPECT_EQ(str(e, "s"), "t");
        }
    }
    for (const auto &[key, count] : open)
        EXPECT_EQ(count, 0) << "unclosed span id " << key.second;
    EXPECT_TRUE(sawThreadName);
}

// ----------------------------------------------------------------
// Per-domain rings (the parallel board's determinism contract)
// ----------------------------------------------------------------

TEST_F(TraceTest, ExportIsIndependentOfDomainInterleaving)
{
    // The same per-domain record streams, written in two different
    // cross-domain interleavings (as different thread schedules
    // would produce), must export byte-identical JSON.
    auto emit = [](unsigned order) {
        auto d0a = [] {
            DomainScope ds(0);
            DPU_TRACE_INSTANT(TraceCat::Core, 0, "a", 10, "n", 1);
        };
        auto d0b = [] {
            DomainScope ds(0);
            DPU_TRACE_INSTANT(TraceCat::Core, 0, "b", 30, "n", 2);
        };
        auto d1a = [] {
            DomainScope ds(1);
            DPU_TRACE_INSTANT(TraceCat::Core, 40, "c", 5, "n", 3);
        };
        auto d1b = [] {
            DomainScope ds(1);
            DPU_TRACE_INSTANT(TraceCat::Core, 40, "d", 10, "n", 4);
        };
        if (order == 0) {
            d0a();
            d0b();
            d1a();
            d1b();
        } else {
            d1a();
            d0a();
            d1b();
            d0b();
        }
    };

    tracer().ensureDomains(2);
    std::string out[2];
    for (unsigned order = 0; order < 2; ++order) {
        tracer().arm(64);
        emit(order);
        std::ostringstream os;
        tracer().exportJson(os);
        out[order] = os.str();
        tracer().disarm();
        tracer().clear();
    }
    EXPECT_EQ(out[0], out[1]);

    // And the merge is (ts, domain)-ordered: d1's ts=5 record leads,
    // the ts=10 tie breaks domain 0 first.
    const std::size_t ca = out[0].find("\"name\":\"c\"");
    const std::size_t aa = out[0].find("\"name\":\"a\"");
    const std::size_t da = out[0].find("\"name\":\"d\"");
    ASSERT_NE(ca, std::string::npos);
    ASSERT_NE(aa, std::string::npos);
    ASSERT_NE(da, std::string::npos);
    EXPECT_LT(ca, aa);
    EXPECT_LT(aa, da);
}

TEST_F(TraceTest, IdStreamsArePerDomainAndRestartOnArm)
{
    tracer().ensureDomains(3);
    tracer().arm(64);
    EXPECT_EQ(tracer().nextId(), 1u);
    {
        DomainScope ds(2);
        EXPECT_EQ(tracer().nextId(), (2u << 24) | 1u);
        EXPECT_EQ(tracer().nextId(), (2u << 24) | 2u);
    }
    // Domain 2's ids never perturbed domain 0's stream.
    EXPECT_EQ(tracer().nextId(), 2u);

    // Re-arming restarts every stream: two runs in one process
    // export identical ids (the cross-run determinism contract).
    tracer().disarm();
    tracer().clear();
    tracer().arm(64);
    EXPECT_EQ(tracer().nextId(), 1u);
    DomainScope ds(2);
    EXPECT_EQ(tracer().nextId(), (2u << 24) | 1u);
}

TEST_F(TraceTest, DropAccountingIsPerDomain)
{
    tracer().ensureDomains(2);
    tracer().arm(4);
    for (unsigned i = 0; i < 6; ++i)
        DPU_TRACE_INSTANT(TraceCat::Core, 0, "d0", Tick(i), "n", i);
    {
        DomainScope ds(1);
        for (unsigned i = 0; i < 3; ++i)
            DPU_TRACE_INSTANT(TraceCat::Core, 1, "d1", Tick(i), "n",
                              i);
    }
    // Domain 0 overflowed (6 > 4) and dropped 2; domain 1 did not.
    EXPECT_EQ(tracer().size(), 4u + 3u);
    EXPECT_EQ(tracer().dropped(), 2u);
}

/**
 * @file
 * Unit tests for the discrete-event queue: ordering, same-tick FIFO
 * semantics, limits, and reentrant scheduling.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using dpu::sim::EventQueue;
using dpu::sim::Tick;

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(100, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(EventQueue, CallbackCanSchedule)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] {
        ++fired;
        eq.schedule(15, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 15u);
}

TEST(EventQueue, RunLimitStopsEarly)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(200, [&] { ++fired; });
    eq.run(100);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ScheduleInUsesCurrentTime)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(40, [&] {
        eq.scheduleIn(5, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 45u);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ZeroDelayRunsAtCurrentTick)
{
    EventQueue eq;
    bool ran = false;
    eq.schedule(7, [&] {
        eq.scheduleIn(0, [&] { ran = true; });
    });
    eq.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(eq.now(), 7u);
}

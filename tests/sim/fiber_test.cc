/**
 * @file
 * Unit tests for the cooperative fiber layer.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/fiber.hh"

using dpu::sim::Fiber;

TEST(Fiber, RunsToCompletion)
{
    bool ran = false;
    Fiber f([&] { ran = true; });
    f.resume();
    EXPECT_TRUE(ran);
    EXPECT_TRUE(f.finished());
}

TEST(Fiber, YieldSuspendsAndResumes)
{
    std::vector<int> order;
    Fiber f([&] {
        order.push_back(1);
        Fiber::current()->yield();
        order.push_back(3);
    });
    f.resume();
    order.push_back(2);
    EXPECT_FALSE(f.finished());
    f.resume();
    EXPECT_TRUE(f.finished());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Fiber, CurrentTracksExecutingFiber)
{
    EXPECT_EQ(Fiber::current(), nullptr);
    Fiber *seen = nullptr;
    Fiber f([&] { seen = Fiber::current(); });
    f.resume();
    EXPECT_EQ(seen, &f);
    EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, ManyYields)
{
    int count = 0;
    Fiber f([&] {
        for (int i = 0; i < 100; ++i) {
            ++count;
            Fiber::current()->yield();
        }
    });
    for (int i = 0; i < 100; ++i)
        f.resume();
    EXPECT_EQ(count, 100);
    EXPECT_FALSE(f.finished());
    f.resume();
    EXPECT_TRUE(f.finished());
}

TEST(Fiber, InterleavedFibers)
{
    std::vector<int> order;
    Fiber a([&] {
        order.push_back(1);
        Fiber::current()->yield();
        order.push_back(3);
    });
    Fiber b([&] {
        order.push_back(2);
        Fiber::current()->yield();
        order.push_back(4);
    });
    a.resume();
    b.resume();
    a.resume();
    b.resume();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Fiber, LocalStateSurvivesYield)
{
    long sum = 0;
    Fiber f([&] {
        long local = 0;
        for (int i = 1; i <= 10; ++i) {
            local += i;
            Fiber::current()->yield();
        }
        sum = local;
    });
    while (!f.finished())
        f.resume();
    EXPECT_EQ(sum, 55);
}

/**
 * @file
 * dpCore model tests: lazy-clock cycle accounting, the dual-issue
 * and branch-predictor cost model, the analytics ISA extensions
 * (functional results + cycle costs), DMEM vs cached-DDR routing,
 * interrupts, blocking, and watchpoints.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/dp_core.hh"
#include "mem/cache.hh"
#include "mem/main_memory.hh"
#include "util/crc32.hh"

using namespace dpu;
using core::DpCore;

namespace {

const mem::CacheParams l2Params{256 * 1024, 8, 6};

struct CoreFixture : ::testing::Test
{
    CoreFixture()
        : mm(mem::ddr3_1600, 4 << 20), l2("l2", l2Params, mm),
          core0(std::make_unique<DpCore>(0, eq, mm, l2)),
          core1(std::make_unique<DpCore>(1, eq, mm, l2))
    {
    }

    /** Run a kernel on core0 to completion; return elapsed ticks. */
    sim::Tick
    runOn0(core::Kernel k)
    {
        sim::Tick start = eq.now();
        core0->start(std::move(k));
        eq.run();
        EXPECT_TRUE(core0->finished());
        return eq.now() - start;
    }

    sim::EventQueue eq;
    mem::MainMemory mm;
    mem::Cache l2;
    std::unique_ptr<DpCore> core0, core1;
};

} // namespace

TEST_F(CoreFixture, CycleChargingAdvancesTime)
{
    sim::Tick t = runOn0([](DpCore &c) { c.cycles(1000); });
    EXPECT_EQ(t, sim::dpCoreClock.cyclesToTicks(1000));
}

TEST_F(CoreFixture, DualIssuePairsAluAndLsu)
{
    // 100 ALU ops co-issued with 100 LSU ops = 100 cycles, not 200.
    sim::Tick t = runOn0([](DpCore &c) { c.dualIssue(100, 100); });
    EXPECT_EQ(t, sim::dpCoreClock.cyclesToTicks(100));
}

TEST_F(CoreFixture, BranchPredictorBackwardTaken)
{
    // A taken backward branch (loop) is predicted: 1 cycle.
    sim::Tick loop = runOn0([](DpCore &c) { c.branch(true, true); });
    // A taken FORWARD branch is mispredicted: 1 + penalty.
    core0 = std::make_unique<DpCore>(0, eq, mm, l2);
    sim::Tick fwd = runOn0([](DpCore &c) { c.branch(true, false); });
    EXPECT_GT(fwd, loop);
    EXPECT_EQ(fwd - loop,
              sim::dpCoreClock.cyclesToTicks(core::IsaCosts{}.branchMiss));
}

TEST_F(CoreFixture, MultiplierIsVariableLatency)
{
    core::IsaCosts costs;
    // A 64-bit multiply stalls longer than an 8-bit one (Section 5.4:
    // "variable latency multiplier").
    EXPECT_GT(costs.mulCycles(64), costs.mulCycles(8));
    sim::Tick t8 = runOn0([](DpCore &c) { c.mul(8); });
    core0 = std::make_unique<DpCore>(0, eq, mm, l2);
    sim::Tick t64 = runOn0([](DpCore &c) { c.mul(64); });
    EXPECT_GT(t64, t8);
}

TEST_F(CoreFixture, NtzIsCheaperThanNlz)
{
    // Section 5.4: NTZ = 4 cycles via popcount, NLZ = 13 cycles.
    unsigned ntz = 0, nlz = 0;
    runOn0([&](DpCore &c) {
        ntz = c.ntz(0b1000);
        nlz = c.nlz(0b1000);
    });
    EXPECT_EQ(ntz, 3u);
    EXPECT_EQ(nlz, 60u);
    EXPECT_EQ(core0->statGroup().get("ntzOps"), 1u);
    core::IsaCosts costs;
    EXPECT_LT(costs.ntz, costs.nlz);
}

TEST_F(CoreFixture, CrcHashMatchesUtil)
{
    std::uint32_t h = 0;
    runOn0([&](DpCore &c) { h = c.crcHash(1234); });
    EXPECT_EQ(h, util::crc32Key(1234));
}

TEST_F(CoreFixture, FiltProducesExactBitvector)
{
    std::uint64_t passed = 0;
    runOn0([&](DpCore &c) {
        // 100 x 4 B values 0..99 at DMEM offset 0.
        for (std::uint32_t i = 0; i < 100; ++i)
            c.dmem().store<std::uint32_t>(i * 4, i);
        passed = c.filt(0, 100, 4, 10, 19, 1024);
    });
    EXPECT_EQ(passed, 10u);
    // Bits 10..19 set, everything else clear.
    for (std::uint32_t i = 0; i < 100; ++i) {
        bool bit = (core0->dmem().load<std::uint8_t>(1024 + i / 8) >>
                    (i % 8)) & 1;
        EXPECT_EQ(bit, i >= 10 && i <= 19) << "row " << i;
    }
}

TEST_F(CoreFixture, FiltRateNearPaperCyclesPerTuple)
{
    // The compute loop runs at ~1.66 cycles/tuple so the end-to-end
    // filter matches the paper's 482 Mtuples/s (Section 5.3).
    const std::uint32_t n = 4096;
    sim::Tick t = runOn0([&](DpCore &c) {
        c.filt(0, n, 4, 0, 0, 20000);
    });
    double cpt = double(sim::dpCoreClock.ticksToCycles(t)) / n;
    EXPECT_GT(cpt, 1.4);
    EXPECT_LT(cpt, 1.8);
}

TEST_F(CoreFixture, DmemAccessRoundTrips)
{
    std::uint64_t out = 0;
    runOn0([&](DpCore &c) {
        c.store<std::uint64_t>(c.dmemBase() + 256, 0xfeedface);
        out = c.load<std::uint64_t>(c.dmemBase() + 256);
    });
    EXPECT_EQ(out, 0xfeedfaceull);
    EXPECT_EQ(core0->dmem().load<std::uint64_t>(256), 0xfeedfaceull);
}

TEST_F(CoreFixture, DdrAccessGoesThroughCache)
{
    mm.store().store<std::uint32_t>(0x1000, 77);
    std::uint32_t v = 0;
    runOn0([&](DpCore &c) { v = c.load<std::uint32_t>(0x1000); });
    EXPECT_EQ(v, 77u);
    EXPECT_TRUE(core0->l1d().contains(0x1000));
}

TEST_F(CoreFixture, CachedLoadIsFasterSecondTime)
{
    sim::Tick t = runOn0([&](DpCore &c) {
        sim::Tick t0 = c.now();
        (void)c.load<std::uint32_t>(0x2000);
        sim::Tick t1 = c.now();
        (void)c.load<std::uint32_t>(0x2000);
        sim::Tick t2 = c.now();
        EXPECT_GT(t1 - t0, (t2 - t1) * 10);
    });
    (void)t;
}

TEST_F(CoreFixture, FlushMakesDataVisibleToDms)
{
    runOn0([&](DpCore &c) {
        c.store<std::uint32_t>(0x3000, 5);
        EXPECT_EQ(mm.store().load<std::uint32_t>(0x3000), 0u);
        c.cacheFlush(0x3000, 4);
        EXPECT_EQ(mm.store().load<std::uint32_t>(0x3000), 5u);
    });
}

TEST_F(CoreFixture, InterruptsDeliveredToBlockedCore)
{
    bool isr_ran = false;
    bool woke = false;
    core0->start([&](DpCore &c) {
        c.blockUntil([&] { return isr_ran; });
        woke = true;
    });
    // Post the interrupt after 1 us of simulated time.
    eq.schedule(1'000'000, [&] {
        core0->postInterrupt([&](DpCore &) { isr_ran = true; });
    });
    eq.run();
    EXPECT_TRUE(isr_ran);
    EXPECT_TRUE(woke);
    EXPECT_EQ(core0->statGroup().get("interruptsTaken"), 1u);
}

TEST_F(CoreFixture, InterruptChargesOverhead)
{
    core0->start([&](DpCore &c) {
        c.postInterrupt([](DpCore &) {});
        c.sync();
    });
    eq.run();
    EXPECT_GE(sim::dpCoreClock.ticksToCycles(eq.now()),
              core::IsaCosts{}.interrupt);
}

TEST_F(CoreFixture, TwoCoresInterleaveInTime)
{
    std::vector<int> order;
    core0->start([&](DpCore &c) {
        c.sleepCycles(100);
        order.push_back(0);
        c.sleepCycles(200);
        order.push_back(2);
    });
    core1->start([&](DpCore &c) {
        c.sleepCycles(150);
        order.push_back(1);
        c.sleepCycles(400);
        order.push_back(3);
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST_F(CoreFixture, WatchpointFiresOnWrite)
{
    int hits = 0;
    runOn0([&](DpCore &c) {
        c.addWatchpoint(0x5000, 64, [&](mem::Addr, bool write) {
            if (write)
                ++hits;
        });
        c.store<std::uint32_t>(0x5000, 1);  // hit
        c.store<std::uint32_t>(0x5040, 1);  // outside
        (void)c.load<std::uint32_t>(0x5000); // read, not counted
    });
    EXPECT_EQ(hits, 1);
}

TEST_F(CoreFixture, BlockedCoreWakesOnCondition)
{
    bool flag = false;
    sim::Tick woke_at = 0;
    core0->start([&](DpCore &c) {
        c.blockUntil([&] { return flag; });
        woke_at = c.now();
    });
    eq.schedule(5'000'000, [&] {
        flag = true;
        core0->wake(eq.now());
    });
    eq.run();
    EXPECT_EQ(woke_at, 5'000'000u);
}

/**
 * @file
 * MailBox Controller tests (Section 2.4): lightweight pointer
 * passing between dpCores, the A9 endpoint, FIFO order, and the
 * wake-on-delivery interrupt behaviour.
 */

#include <gtest/gtest.h>

#include <vector>

#include "soc/soc.hh"

using namespace dpu;

namespace {

soc::SocParams
smallParams()
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 8 << 20;
    return p;
}

} // namespace

TEST(Mbc, CoreToCoreMessage)
{
    soc::Soc s(smallParams());
    std::uint64_t got = 0;
    s.start(1, [&](core::DpCore &c) { got = s.mbc().recv(c); });
    s.start(0, [&](core::DpCore &c) {
        s.mbc().send(c, 1, 0xdeadbeefcafef00dull);
    });
    s.run();
    ASSERT_TRUE(s.allFinished());
    EXPECT_EQ(got, 0xdeadbeefcafef00dull);
}

TEST(Mbc, MessagesArriveInOrder)
{
    soc::Soc s(smallParams());
    std::vector<std::uint64_t> got;
    s.start(2, [&](core::DpCore &c) {
        for (int i = 0; i < 10; ++i)
            got.push_back(s.mbc().recv(c));
    });
    s.start(0, [&](core::DpCore &c) {
        for (std::uint64_t i = 0; i < 10; ++i)
            s.mbc().send(c, 2, 100 + i);
    });
    s.run();
    ASSERT_TRUE(s.allFinished());
    for (std::uint64_t i = 0; i < 10; ++i)
        EXPECT_EQ(got[i], 100 + i);
}

TEST(Mbc, ReceiverBlocksUntilDelivery)
{
    soc::Soc s(smallParams());
    sim::Tick recv_at = 0;
    s.start(3, [&](core::DpCore &c) {
        (void)s.mbc().recv(c);
        recv_at = c.now();
    });
    s.start(0, [&](core::DpCore &c) {
        c.sleepCycles(5000);
        s.mbc().send(c, 3, 7);
    });
    s.run();
    EXPECT_GE(recv_at, sim::dpCoreClock.cyclesToTicks(5000));
}

TEST(Mbc, A9MailboxWithHandler)
{
    // The A9 dispatch model: a dpCore posts a completion pointer to
    // the A9 mailbox; the "driver" handler picks it up.
    soc::Soc s(smallParams());
    std::uint64_t a9_got = 0;
    s.mbc().onMessage(s.mbc().a9Box(), [&] {
        std::uint64_t msg;
        ASSERT_TRUE(s.mbc().tryRecv(s.mbc().a9Box(), msg));
        a9_got = msg;
    });
    s.start(0, [&](core::DpCore &c) {
        s.mbc().send(c, s.mbc().a9Box(), 0x1234);
    });
    s.run();
    EXPECT_EQ(a9_got, 0x1234u);
}

TEST(Mbc, HostCanSeedWorkToCores)
{
    // The A9 offload pattern: the host sends each core a pointer to
    // its work descriptor in DRAM.
    soc::Soc s(smallParams());
    std::vector<std::uint64_t> work(32, 0);
    for (unsigned id = 0; id < 32; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            work[id] = s.mbc().recv(c);
        });
    }
    for (unsigned id = 0; id < 32; ++id)
        s.mbc().sendFromHost(id, 0x1000 + id * 64);
    s.run();
    ASSERT_TRUE(s.allFinished());
    for (unsigned id = 0; id < 32; ++id)
        EXPECT_EQ(work[id], 0x1000 + id * 64);
}

TEST(Mbc, MailboxCountMatchesPaper)
{
    soc::Soc s(smallParams());
    // 34 mailboxes on the 40 nm die: 32 dpCores + A9 + M0.
    EXPECT_EQ(s.mbc().nBoxes(), 34u);
    EXPECT_EQ(s.mbc().a9Box(), mbc::a9Mailbox);
    EXPECT_EQ(s.mbc().m0Box(), mbc::m0Mailbox);
}

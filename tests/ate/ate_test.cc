/**
 * @file
 * ATE tests (Section 2.3, Figure 2): hardware RPC semantics and
 * atomicity, near/far latencies, split-phase overlap, software
 * RPCs, and the synchronization primitives built on top (mutex,
 * barrier, work-stealing counter), plus the dpu_serialized
 * flush/invalidate choreography that makes shared structures work
 * without hardware coherence.
 */

#include <gtest/gtest.h>

#include <vector>

#include "rt/serialized.hh"
#include "rt/sync.hh"
#include "soc/soc.hh"

using namespace dpu;

namespace {

soc::SocParams
smallParams()
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 16 << 20;
    return p;
}

} // namespace

TEST(Ate, RemoteLoadStoreOnDmem)
{
    soc::Soc s(smallParams());
    s.core(7).dmem().store<std::uint64_t>(128, 0xabcdull);

    std::uint64_t got = 0;
    s.start(0, [&](core::DpCore &c) {
        got = s.ate().remoteLoad(c, 7, mem::dmemAddr(7, 128), 8);
        s.ate().remoteStore(c, 7, mem::dmemAddr(7, 136), 0x1111, 8);
    });
    s.run();
    EXPECT_EQ(got, 0xabcdull);
    EXPECT_EQ(s.core(7).dmem().load<std::uint64_t>(136), 0x1111ull);
}

TEST(Ate, RemoteOpsOnDdrGoThroughOwnersCache)
{
    soc::Soc s(smallParams());
    s.start(0, [&](core::DpCore &c) {
        s.ate().remoteStore(c, 5, 0x4000, 99, 8);
    });
    s.run();
    // The store is dirty in core 5's L1, NOT in DDR: single-owner
    // coherence, the whole point of pinning structures to a core.
    EXPECT_TRUE(s.core(5).l1d().isDirty(0x4000));
    EXPECT_EQ(s.memory().store().load<std::uint64_t>(0x4000), 0u);

    // Another core reading the same address via the SAME owner
    // observes the value.
    std::uint64_t got = 0;
    s.start(1, [&](core::DpCore &c) {
        got = s.ate().remoteLoad(c, 5, 0x4000, 8);
    });
    s.run();
    EXPECT_EQ(got, 99u);
}

TEST(Ate, FetchAddCountsExactlyFromAllCores)
{
    soc::Soc s(smallParams());
    const unsigned owner = 3;
    s.core(owner).dmem().store<std::uint64_t>(0, 0);
    for (unsigned id = 0; id < 32; ++id) {
        s.start(id, [&](core::DpCore &c) {
            for (int i = 0; i < 50; ++i)
                s.ate().fetchAdd(c, owner, mem::dmemAddr(owner, 0),
                                 1, 8);
        });
    }
    s.run();
    ASSERT_TRUE(s.allFinished());
    EXPECT_EQ(s.core(owner).dmem().load<std::uint64_t>(0),
              32u * 50u);
}

TEST(Ate, CompareSwapSucceedsExactlyOnce)
{
    soc::Soc s(smallParams());
    const unsigned owner = 0;
    s.core(owner).dmem().store<std::uint64_t>(64, 0);
    int winners = 0;
    for (unsigned id = 0; id < 8; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            std::uint64_t old = s.ate().compareSwap(
                c, owner, mem::dmemAddr(owner, 64), 0, id + 1, 8);
            if (old == 0)
                ++winners;
        });
    }
    s.run();
    EXPECT_EQ(winners, 1);
}

TEST(Ate, FarRpcIsSlowerThanNearRpc)
{
    // Figure 2's core shape: inter-macro requests take longer than
    // intra-macro ones.
    auto time_rpc = [](unsigned target) {
        soc::SocParams p = soc::dpu40nm();
        p.ddrBytes = 16 << 20;
        soc::Soc s(p);
        sim::Tick dt = 0;
        s.start(0, [&](core::DpCore &c) {
            sim::Tick t0 = c.now();
            s.ate().remoteLoad(c, target, mem::dmemAddr(target, 0),
                               8);
            dt = c.now() - t0;
        });
        s.run();
        return dt;
    };
    sim::Tick near = time_rpc(1);   // same macro (cores 0-7)
    sim::Tick far = time_rpc(31);   // macro 3
    EXPECT_GT(far, near);
    // Both are tens of cycles, not thousands (hardware, no IRQ).
    EXPECT_LT(far, sim::dpCoreClock.cyclesToTicks(200));
    EXPECT_GT(near, sim::dpCoreClock.cyclesToTicks(10));
}

TEST(Ate, SoftwareRpcCostsMoreThanHardwareRpc)
{
    soc::Soc s(smallParams());
    sim::Tick hw = 0, sw = 0;
    s.start(5, [&](core::DpCore &) {
        // Keep the remote core alive but idle (blocked).
        bool never = false;
        s.core(5).blockUntil([&] { return never; });
    });
    s.start(0, [&](core::DpCore &c) {
        sim::Tick t0 = c.now();
        s.ate().remoteLoad(c, 5, mem::dmemAddr(5, 0), 8);
        hw = c.now() - t0;
        t0 = c.now();
        s.ate().swRpc(c, 5, [](core::DpCore &) {});
        sw = c.now() - t0;
        s.core(5).wake(c.now()); // unblock... via interrupt below
    });
    s.run();
    EXPECT_GT(sw, hw * 2);
}

TEST(Ate, SplitPhaseOverlapsComputeWithRpc)
{
    soc::Soc s(smallParams());
    sim::Tick blocking = 0, overlapped = 0;
    s.start(0, [&](core::DpCore &c) {
        // Blocking: RPC then compute.
        sim::Tick t0 = c.now();
        s.ate().remoteLoad(c, 31, mem::dmemAddr(31, 0), 8);
        c.sleepCycles(60);
        blocking = c.now() - t0;

        // Split-phase: issue, compute the same 60 cycles, wait.
        t0 = c.now();
        s.ate().issue(c, 31, ate::AteOp::Load, mem::dmemAddr(31, 0));
        c.sleepCycles(60);
        s.ate().waitResponse(c);
        overlapped = c.now() - t0;
    });
    s.run();
    EXPECT_LT(overlapped, blocking);
}

TEST(Ate, FifoOrderingBetweenPairs)
{
    // Two stores from the same source to the same remote word must
    // land in order: the second value wins.
    soc::Soc s(smallParams());
    s.start(0, [&](core::DpCore &c) {
        s.ate().remoteStore(c, 9, mem::dmemAddr(9, 0), 1, 8);
        s.ate().remoteStore(c, 9, mem::dmemAddr(9, 0), 2, 8);
    });
    s.run();
    EXPECT_EQ(s.core(9).dmem().load<std::uint64_t>(0), 2u);
}

TEST(Ate, SwRpcRunsOnRemoteCore)
{
    soc::Soc s(smallParams());
    unsigned ran_on = 999;
    // The target core must be alive to take the interrupt.
    bool done = false;
    s.start(12, [&](core::DpCore &c) {
        c.blockUntil([&] { return done; });
    });
    s.start(0, [&](core::DpCore &c) {
        s.ate().swRpc(c, 12, [&](core::DpCore &rc) {
            ran_on = rc.id();
        });
        done = true;
        s.core(12).wake(c.now());
    });
    s.run();
    EXPECT_EQ(ran_on, 12u);
    EXPECT_TRUE(s.allFinished());
}

TEST(Ate, MutexGivesMutualExclusion)
{
    soc::Soc s(smallParams());
    rt::AteMutex mtx(0, 0);
    // A non-atomic shared counter in core 0's DMEM at offset 8,
    // updated with plain remote load+store inside the lock: only
    // mutual exclusion makes the count exact.
    s.core(0).dmem().store<std::uint64_t>(8, 0);
    for (unsigned id = 0; id < 16; ++id) {
        s.start(id, [&](core::DpCore &c) {
            for (int i = 0; i < 10; ++i) {
                mtx.lock(c, s.ate());
                std::uint64_t v = s.ate().remoteLoad(
                    c, 0, mem::dmemAddr(0, 8), 8);
                c.cycles(20); // widen the race window
                s.ate().remoteStore(c, 0, mem::dmemAddr(0, 8), v + 1,
                                    8);
                mtx.unlock(c, s.ate());
            }
        });
    }
    s.run();
    ASSERT_TRUE(s.allFinished());
    EXPECT_EQ(s.core(0).dmem().load<std::uint64_t>(8), 160u);
}

TEST(Ate, BarrierSeparatesPhases)
{
    soc::Soc s(smallParams());
    rt::AteBarrier bar(0, 32, 8);
    std::vector<int> phase1_done(8, 0);
    bool violated = false;
    for (unsigned id = 0; id < 8; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            c.sleepCycles(100 * (id + 1)); // stagger arrivals
            phase1_done[id] = 1;
            bar.arrive(c, s.ate());
            for (int other = 0; other < 8; ++other)
                if (!phase1_done[std::size_t(other)])
                    violated = true;
        });
    }
    s.run();
    ASSERT_TRUE(s.allFinished());
    EXPECT_FALSE(violated);
}

TEST(Ate, WorkStealingCounterClaimsAllChunksOnce)
{
    soc::Soc s(smallParams());
    s.core(4).dmem().store<std::uint64_t>(16, 0);
    rt::AteCounter counter(4, 16);
    const std::uint64_t n_chunks = 500;
    std::vector<int> claims(n_chunks, 0);
    for (unsigned id = 0; id < 32; ++id) {
        s.start(id, [&](core::DpCore &c) {
            while (true) {
                std::uint64_t i = counter.next(c, s.ate());
                if (i >= n_chunks)
                    break;
                ++claims[i];
                c.sleepCycles(50 + (i % 7) * 10);
            }
        });
    }
    s.run();
    ASSERT_TRUE(s.allFinished());
    for (std::uint64_t i = 0; i < n_chunks; ++i)
        EXPECT_EQ(claims[i], 1) << "chunk " << i;
}

TEST(Ate, DpuSerializedFixesStaleness)
{
    soc::Soc s(smallParams());
    const mem::Addr shared = 0x8000;
    const unsigned owner = 2;

    // Without coherence: caller writes, owner reads stale 0.
    std::uint64_t stale = 1, fresh = 0;
    bool owner_alive = true;
    s.start(owner, [&](core::DpCore &c) {
        c.blockUntil([&] { return !owner_alive; });
    });
    s.start(0, [&](core::DpCore &c) {
        // Prime the owner's cache with the old value (via an RPC
        // load through its hierarchy).
        (void)s.ate().remoteLoad(c, owner, shared, 8);
        c.store<std::uint64_t>(shared, 42); // dirty in OUR cache

        // Naive RPC without visitors: remote sees stale data.
        s.ate().swRpc(c, owner, [&](core::DpCore &rc) {
            stale = rc.load<std::uint64_t>(shared);
        });

        // dpu_serialized with an args visitor: flush + invalidate.
        rt::dpuSerialized(
            c, s.ate(), owner,
            [&](core::DpCore &rc) {
                fresh = rc.load<std::uint64_t>(shared);
            },
            {{shared, 8}});
        owner_alive = false;
        s.core(owner).wake(c.now());
    });
    s.run();
    ASSERT_TRUE(s.allFinished());
    EXPECT_EQ(stale, 0u);
    EXPECT_EQ(fresh, 42u);
}

// ----------------------------------------------------------------
// Fault recovery: dropped requests, bounded waits, retry wrapper.
// ----------------------------------------------------------------

#include "sim/fault.hh"

TEST(Ate, DroppedRequestIsRetriedAndAppliedExactlyOnce)
{
    sim::faultPlane().reset();
    // Lose exactly the first RPC request (before the remote op
    // executes, so the retry cannot double-apply).
    sim::faultPlane().configure("ate.drop@nth=1,max=1", 5);

    soc::Soc s(smallParams());
    s.start(0, [&](core::DpCore &c) {
        rt::AteRetryPolicy pol;
        pol.timeout = sim::Tick(1e6); // 1 us
        pol.maxRetries = 2;
        rt::ReliableAte ra(s.ate(), pol);

        auto old = ra.fetchAdd(c, 7, mem::dmemAddr(7, 64), 5);
        ASSERT_TRUE(old.has_value());
        EXPECT_EQ(*old, 0u);
        EXPECT_EQ(ra.retries(), 1u);
        EXPECT_EQ(ra.failures(), 0u);

        auto now = ra.load(c, 7, mem::dmemAddr(7, 64));
        ASSERT_TRUE(now.has_value());
        EXPECT_EQ(*now, 5u) << "the add must land exactly once";
    });
    s.run();
    sim::faultPlane().reset();
    EXPECT_TRUE(s.allFinished());
}

TEST(Ate, ExhaustedRetriesFailCleanlyWithoutHanging)
{
    sim::faultPlane().reset();
    sim::faultPlane().configure("ate.drop@p=1", 5); // fabric is dead

    soc::Soc s(smallParams());
    s.start(0, [&](core::DpCore &c) {
        rt::AteRetryPolicy pol;
        pol.timeout = sim::Tick(1e6);
        pol.maxRetries = 2;
        rt::ReliableAte ra(s.ate(), pol);

        auto v = ra.load(c, 7, mem::dmemAddr(7, 64));
        EXPECT_FALSE(v.has_value());
        EXPECT_EQ(ra.retries(), 3u); // 1 + maxRetries issues
        EXPECT_EQ(ra.failures(), 1u);
    });
    s.run(); // must drain: a dead fabric fails ops, not the sim
    sim::faultPlane().reset();
    EXPECT_TRUE(s.allFinished());
}

TEST(Ate, DelayedResponseAfterAbandonIsDiscardedAsStale)
{
    sim::faultPlane().reset();
    // Delay the first request's delivery by 4 us. The delay
    // charges the (src,dst) link, so the first retry queues behind
    // it and also times out; the second retry (backed-off timeout
    // now 4 us) completes. Both late responses must be dropped as
    // stale instead of corrupting the retried operation's slot.
    sim::faultPlane().configure("ate.delay@nth=1,max=1,mag=4000000",
                                5);

    soc::Soc s(smallParams());
    s.start(0, [&](core::DpCore &c) {
        rt::AteRetryPolicy pol;
        pol.timeout = sim::Tick(1e6);
        pol.maxRetries = 2;
        rt::ReliableAte ra(s.ate(), pol);

        auto v = ra.load(c, 7, mem::dmemAddr(7, 96));
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(ra.retries(), 2u);

        // Park long enough for the delayed original to come back.
        c.sleepCycles(8000);
        auto again = ra.load(c, 7, mem::dmemAddr(7, 96));
        ASSERT_TRUE(again.has_value());
        EXPECT_EQ(*again, *v);
    });
    s.run();
    EXPECT_EQ(s.ate().statGroup().get("staleResponses"), 2u);
    sim::faultPlane().reset();
    EXPECT_TRUE(s.allFinished());
}

/**
 * @file
 * Randomized ATE property test: all 32 cores fire random mixes of
 * hardware RPCs (loads, stores, fetch-adds, compare-and-swaps) at
 * shared words pinned to random owner cores. Because every mutation
 * of a word goes through its single owner's pipeline, the final
 * state must satisfy owner-serialized semantics: fetch-add sums are
 * exact, and each CAS chain forms a valid hand-off sequence.
 */

#include <gtest/gtest.h>

#include <vector>

#include "rt/sync.hh"
#include "sim/rng.hh"
#include "soc/soc.hh"

using namespace dpu;

namespace {

soc::SocParams
smallParams()
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 8 << 20;
    return p;
}

} // namespace

class AteFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(AteFuzz, MixedAtomicsAreOwnerSerialized)
{
    sim::Rng seeder{std::uint64_t(GetParam()) * 917 + 11};
    soc::Soc s(smallParams());

    // 8 shared counters, each pinned to a random owner's DMEM.
    const unsigned n_words = 8;
    std::vector<unsigned> owner(n_words);
    std::vector<mem::Addr> addr(n_words);
    for (unsigned w = 0; w < n_words; ++w) {
        owner[w] = unsigned(seeder.below(32));
        addr[w] = mem::dmemAddr(owner[w], 1024 + w * 8);
        s.core(owner[w]).dmem().store<std::uint64_t>(1024 + w * 8,
                                                     0);
    }

    // Expected fetch-add totals, and CAS success counts.
    std::vector<std::uint64_t> fa_expect(n_words, 0);
    std::vector<std::uint64_t> cas_wins(n_words, 0);
    std::uint64_t plan_seed = seeder.next();

    for (unsigned id = 0; id < 32; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            sim::Rng rng{plan_seed ^ (id * 7919)};
            ate::Ate &ate = s.ateFor(id);
            for (int op = 0; op < 60; ++op) {
                unsigned w = unsigned(rng.below(n_words));
                switch (rng.below(3)) {
                  case 0: {
                    std::int64_t d =
                        std::int64_t(rng.below(100)) + 1;
                    ate.fetchAdd(c, owner[w], addr[w] + 0, d, 8);
                    // (accounted below, host-side)
                    break;
                  }
                  case 1:
                    (void)ate.remoteLoad(c, owner[w], addr[w], 8);
                    break;
                  default: {
                    // CAS on a separate hand-off word: grab it if
                    // free (0), release after a pause. The pause is
                    // drawn unconditionally so the host-side replay
                    // consumes the identical RNG stream.
                    sim::Cycles pause =
                        sim::Cycles(20 + rng.below(60));
                    std::uint64_t got = ate.compareSwap(
                        c, owner[w],
                        mem::dmemAddr(owner[w], 2048 + w * 8), 0,
                        id + 1, 8);
                    if (got == 0) {
                        c.sleepCycles(pause);
                        ate.remoteStore(
                            c, owner[w],
                            mem::dmemAddr(owner[w], 2048 + w * 8),
                            0, 8);
                        ++cas_wins[w];
                    }
                    break;
                  }
                }
                if (rng.below(4) == 0)
                    c.sleepCycles(rng.below(200));
            }
        });
    }

    // Host-side replay of the fetch-add plan (same per-core RNG
    // streams) to compute the exact expected sums.
    for (unsigned id = 0; id < 32; ++id) {
        sim::Rng rng{plan_seed ^ (id * 7919)};
        for (int op = 0; op < 60; ++op) {
            unsigned w = unsigned(rng.below(n_words));
            switch (rng.below(3)) {
              case 0:
                fa_expect[w] += rng.below(100) + 1;
                break;
              case 1:
                break;
              default:
                (void)rng.below(60); // the unconditional pause draw
                break;
            }
            if (rng.below(4) == 0)
                (void)rng.below(200);
        }
    }

    s.run();
    ASSERT_TRUE(s.allFinished());

    for (unsigned w = 0; w < n_words; ++w) {
        std::uint64_t v =
            s.core(owner[w]).dmem().load<std::uint64_t>(1024 +
                                                        w * 8);
        EXPECT_EQ(v, fa_expect[w]) << "word " << w;
        // Every CAS winner released; the hand-off word ends free.
        EXPECT_EQ(s.core(owner[w]).dmem().load<std::uint64_t>(
                      2048 + w * 8), 0u);
    }
    (void)cas_wins;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AteFuzz, ::testing::Range(0, 4));

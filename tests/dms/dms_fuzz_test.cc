/**
 * @file
 * Randomized property tests for the DMS: arbitrary interleaved
 * chains of DDR->DMEM and DMEM->DDR descriptors across both
 * channels and many cores must leave memory exactly as a sequential
 * reference execution would, and random partition workloads must
 * deliver every row exactly once to the right core regardless of
 * chunk size, tuple shape or consumer speed.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "rt/dms_ctl.hh"
#include "rt/partition.hh"
#include "sim/json.hh"
#include "sim/rng.hh"
#include "sim/trace.hh"
#include "soc/soc.hh"
#include "util/crc32.hh"

using namespace dpu;
using rt::DmsCtl;

namespace {

soc::SocParams
smallParams()
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 32 << 20;
    return p;
}

} // namespace

/** Seeded random transfer plans. */
class DmsFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(DmsFuzz, RandomTransferChainsMatchReference)
{
    sim::Rng rng{std::uint64_t(GetParam()) * 1313 + 7};
    soc::Soc s(smallParams());

    // Reference copy of DDR contents, maintained host-side.
    const std::uint64_t ddr_words = 1 << 20; // 4 MB working region
    std::vector<std::uint32_t> ref(ddr_words);
    for (std::uint64_t i = 0; i < ddr_words; ++i) {
        ref[i] = std::uint32_t(rng.next());
        s.memory().store().store<std::uint32_t>(i * 4, ref[i]);
    }

    // Each core executes a random sequence of {read buffer, mutate
    // in DMEM, write back elsewhere} against a private DDR region.
    const unsigned n_cores = 8;
    const std::uint64_t region_words = ddr_words / n_cores;

    struct Op
    {
        std::uint32_t srcw, dstw, words;
    };
    std::vector<std::vector<Op>> plans(n_cores);
    for (unsigned id = 0; id < n_cores; ++id) {
        unsigned n_ops = 4 + unsigned(rng.below(12));
        for (unsigned k = 0; k < n_ops; ++k) {
            Op op;
            op.words = 16 + std::uint32_t(rng.below(1500));
            op.srcw = std::uint32_t(rng.below(region_words -
                                              op.words));
            op.dstw = std::uint32_t(rng.below(region_words -
                                              op.words));
            plans[id].push_back(op);
        }
    }

    for (unsigned id = 0; id < n_cores; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            DmsCtl ctl(c, s.dms());
            const std::uint64_t base = id * region_words;
            for (const auto &op : plans[id]) {
                ctl.resetArena();
                auto rd = ctl.setupDdrToDmem(
                    op.words, 4, (base + op.srcw) * 4, 0, 0, false);
                ctl.push(rd, 0);
                ctl.wfe(0);
                for (std::uint32_t i = 0; i < op.words; ++i) {
                    std::uint32_t v = c.dmem().load<std::uint32_t>(
                        i * 4);
                    c.dmem().store<std::uint32_t>(i * 4, v ^ id);
                }
                c.dualIssue(op.words, op.words * 2);
                ctl.clearEvent(0);
                auto wr = ctl.setupDmemToDdr(
                    op.words, 4, 0, (base + op.dstw) * 4, 1, false);
                ctl.push(wr, 1);
                ctl.wfe(1);
                ctl.clearEvent(1);
            }
        });
    }
    s.run();
    ASSERT_TRUE(s.allFinished());

    // Sequential reference execution with the DMS's SNAPSHOT
    // semantics: the whole source buffer lands in DMEM before any
    // byte is written back, so overlapping src/dst ranges read the
    // pre-op contents.
    for (unsigned id = 0; id < n_cores; ++id) {
        const std::uint64_t base = id * region_words;
        for (const auto &op : plans[id]) {
            std::vector<std::uint32_t> snap(op.words);
            for (std::uint32_t i = 0; i < op.words; ++i)
                snap[i] = ref[base + op.srcw + i] ^ id;
            for (std::uint32_t i = 0; i < op.words; ++i)
                ref[base + op.dstw + i] = snap[i];
        }
    }
    for (std::uint64_t i = 0; i < ddr_words; ++i) {
        ASSERT_EQ(s.memory().store().load<std::uint32_t>(i * 4),
                  ref[i]) << "word " << i;
    }
}

TEST_P(DmsFuzz, RandomPartitionShapesDeliverEveryRowOnce)
{
    sim::Rng rng{std::uint64_t(GetParam()) * 31 + 3};
    soc::Soc s(smallParams());

    const std::uint32_t n_rows =
        2000 + std::uint32_t(rng.below(30000));
    const unsigned n_cols = 2 + unsigned(rng.below(4)); // 2..5
    const std::uint32_t chunk_rows =
        64u << rng.below(3); // 64/128/256
    const std::uint16_t buf_bytes =
        std::uint16_t((1024u << rng.below(2)) + 4);
    const sim::Cycles delay = sim::Cycles(rng.below(3000));

    const std::uint32_t stride = n_rows * 4;
    for (std::uint32_t r = 0; r < n_rows; ++r) {
        s.memory().store().store<std::uint32_t>(
            0x100000 + r * 4, std::uint32_t(rng.next())); // key
        for (unsigned col = 1; col < n_cols; ++col)
            s.memory().store().store<std::uint32_t>(
                0x100000 + col * stride + r * 4, r); // row tag
    }

    std::vector<int> delivered(n_rows, 0);
    std::uint64_t wrong_core = 0;
    for (unsigned id = 0; id < 32; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            DmsCtl ctl(c, s.dms());
            if (id == 0) {
                rt::PartitionJob job;
                job.table = 0x100000;
                job.nRows = n_rows;
                job.nCols = std::uint8_t(n_cols);
                job.colWidth = 4;
                job.colStride = stride;
                job.chunkRows = chunk_rows;
                job.dstBufBytes = buf_bytes;
                rt::runPartition(ctl, job);
            }
            const unsigned tuple = n_cols * 4;
            rt::consumePartition(
                ctl, 0, buf_bytes, 2, 16,
                [&](std::uint32_t off, std::uint32_t rows) {
                    for (std::uint32_t i = 0; i < rows; ++i) {
                        std::uint32_t key =
                            c.dmem().load<std::uint32_t>(off +
                                                         i * tuple);
                        if ((util::crc32Key(key) & 31) != id)
                            ++wrong_core;
                        if (n_cols > 1) {
                            std::uint32_t tag =
                                c.dmem().load<std::uint32_t>(
                                    off + i * tuple + 4);
                            if (tag < n_rows)
                                ++delivered[tag];
                        }
                    }
                    c.dualIssue(rows * n_cols, rows * n_cols);
                    if (delay)
                        c.sleepCycles(delay);
                });
            if (id == 0) {
                ctl.wfe(30);
                ctl.clearEvent(30);
            }
        });
    }
    s.run();
    ASSERT_TRUE(s.allFinished());
    EXPECT_EQ(wrong_core, 0u);
    for (std::uint32_t r = 0; r < n_rows; ++r)
        ASSERT_EQ(delivered[r], 1) << "row " << r;
}

/**
 * Property: with tracing armed, any random descriptor chain produces
 * a well-formed trace — the JSON parses, every async begin has a
 * matching end (keyed by cat+id, begin first), and timestamps are
 * monotone within each (pid, tid) track.
 */
TEST_P(DmsFuzz, RandomChainsEmitWellFormedTraceJson)
{
    if (!DPU_TRACING)
        GTEST_SKIP() << "built with -DDPU_TRACING=0";
    sim::Tracer &tr = sim::tracer();
    tr.arm(1u << 18);

    sim::Rng rng{std::uint64_t(GetParam()) * 977 + 11};
    soc::Soc s(smallParams());
    for (std::uint32_t i = 0; i < 4096; ++i)
        s.memory().store().store<std::uint32_t>(
            i * 4, std::uint32_t(rng.next()));

    // A few cores run random-length chains of read/modify/write
    // descriptor pairs so DMAD, load/store engines and event tracks
    // all emit overlapping spans.
    for (unsigned id = 0; id < 4; ++id) {
        unsigned n_ops = 2 + unsigned(rng.below(6));
        std::vector<std::uint32_t> words;
        for (unsigned k = 0; k < n_ops; ++k)
            words.push_back(16 + std::uint32_t(rng.below(800)));
        s.start(id, [&s, id, words](core::DpCore &c) {
            DmsCtl ctl(c, s.dms());
            for (std::uint32_t w : words) {
                ctl.resetArena();
                auto rd = ctl.setupDdrToDmem(w, 4, 0, 0, 0, false);
                ctl.push(rd, 0);
                ctl.wfe(0);
                c.dualIssue(w, w);
                ctl.clearEvent(0);
                auto wr = ctl.setupDmemToDdr(w, 4, 0, 0x8000, 1,
                                             false);
                ctl.push(wr, 1);
                ctl.wfe(1);
                ctl.clearEvent(1);
            }
        });
    }
    s.run();
    ASSERT_TRUE(s.allFinished());
    EXPECT_EQ(tr.dropped(), 0u);
    EXPECT_GT(tr.size(), 0u);

    std::ostringstream os;
    tr.exportJson(os);
    tr.disarm();
    tr.clear();

    sim::json::Value doc;
    std::string err;
    ASSERT_TRUE(sim::json::parse(os.str(), doc, err)) << err;
    const sim::json::Value *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, sim::json::Value::Kind::Array);

    std::map<std::pair<std::string, std::uint64_t>, int> open;
    std::map<std::pair<std::uint64_t, std::uint64_t>, double> last;
    std::uint64_t spans = 0;
    for (const auto &e : events->arr) {
        const sim::json::Value *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->s == "M")
            continue;
        const double ts = e.find("ts")->asDouble();
        auto track = std::make_pair(e.find("pid")->asU64(),
                                    e.find("tid")->asU64());
        auto it = last.find(track);
        if (it != last.end()) {
            ASSERT_GE(ts, it->second);
        }
        last[track] = ts;
        if (ph->s == "b" || ph->s == "e") {
            auto key = std::make_pair(e.find("cat")->s,
                                      e.find("id")->asU64());
            if (ph->s == "b") {
                ++open[key];
                ++spans;
            } else {
                ASSERT_GT(open[key], 0) << "orphan 'e' id "
                                        << key.second;
                --open[key];
            }
        }
    }
    EXPECT_GT(spans, 0u);
    for (const auto &[key, count] : open)
        EXPECT_EQ(count, 0) << "unclosed span id " << key.second;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DmsFuzz, ::testing::Range(0, 6));

/**
 * @file
 * Hardware partitioning tests (Sections 3.1-3.4, Figures 9/10/13):
 * correctness of hash-radix, raw-radix and range partitioning
 * across all 32 cores, back-pressure under a slow consumer, and
 * pipeline throughput sanity.
 */

#include <gtest/gtest.h>

#include <vector>

#include "rt/partition.hh"
#include "sim/rng.hh"
#include "soc/soc.hh"
#include "util/crc32.hh"

using namespace dpu;
using rt::DmsCtl;
using rt::PartitionJob;
using rt::PartitionScheme;

namespace {

soc::SocParams
smallParams()
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 64 << 20;
    return p;
}

/** Column-major 4-column table; column 0 is the key. */
struct Table
{
    mem::Addr base;
    std::uint32_t rows;
    std::uint32_t colStride;
};

Table
makeTable(soc::Soc &s, std::uint32_t rows, std::uint64_t seed)
{
    Table t{0x100000, rows, rows * 4};
    sim::Rng rng{seed};
    for (std::uint32_t r = 0; r < rows; ++r) {
        std::uint32_t key = std::uint32_t(rng.next());
        s.memory().store().store<std::uint32_t>(t.base + r * 4, key);
        for (unsigned col = 1; col < 4; ++col) {
            s.memory().store().store<std::uint32_t>(
                t.base + col * t.colStride + r * 4, r * 10 + col);
        }
    }
    return t;
}

struct GotRow
{
    std::uint32_t key;
    std::uint32_t c1, c2, c3;
};

/**
 * Run a 32-way partition of @p t under @p scheme; collect per-core
 * received rows. Core 0 issues the chain and also consumes.
 */
std::vector<std::vector<GotRow>>
runPartitionAll(soc::Soc &s, const Table &t,
                const PartitionScheme &scheme,
                std::uint64_t *stalls = nullptr,
                sim::Cycles consumer_delay = 0,
                std::uint16_t buf_bytes = 2048 + 4)
{
    std::vector<std::vector<GotRow>> got(32);
    for (unsigned id = 0; id < 32; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            DmsCtl ctl(c, s.dms());
            if (id == 0) {
                PartitionJob job;
                job.table = t.base;
                job.nRows = t.rows;
                job.nCols = 4;
                job.colWidth = 4;
                job.colStride = t.colStride;
                job.scheme = scheme;
                job.dstBase = 0;
                job.dstBufBytes = buf_bytes;
                job.dstNBufs = 2;
                job.dstFirstEvent = 16;
                rt::runPartition(ctl, job);
            }
            rt::consumePartition(
                ctl, 0, buf_bytes, 2, 16,
                [&](std::uint32_t off, std::uint32_t rows) {
                    for (std::uint32_t r = 0; r < rows; ++r) {
                        GotRow g;
                        g.key = c.dmem().load<std::uint32_t>(
                            off + r * 16);
                        g.c1 = c.dmem().load<std::uint32_t>(
                            off + r * 16 + 4);
                        g.c2 = c.dmem().load<std::uint32_t>(
                            off + r * 16 + 8);
                        g.c3 = c.dmem().load<std::uint32_t>(
                            off + r * 16 + 12);
                        got[id].push_back(g);
                    }
                    c.dualIssue(rows * 4, rows * 4);
                    if (consumer_delay)
                        c.sleepCycles(consumer_delay);
                });
            if (id == 0) {
                ctl.wfe(30); // flush completion
            }
        });
    }
    s.run();
    EXPECT_TRUE(s.allFinished());
    if (stalls)
        *stalls = s.dms().dmac().statGroup().get("partStalls");
    return got;
}

} // namespace

TEST(Partition, HashRadixRoutesEveryRowOnce)
{
    soc::Soc s(smallParams());
    Table t = makeTable(s, 10000, 42);
    auto got = runPartitionAll(s, t, PartitionScheme{});

    // Every input row must arrive EXACTLY once (not just the right
    // total: a loop re-reading one chunk keeps key->core routing
    // consistent, so we track per-row delivery via column 1, which
    // encodes the row index).
    std::vector<int> delivered(10000, 0);
    std::uint64_t total = 0;
    for (unsigned id = 0; id < 32; ++id) {
        for (const GotRow &g : got[id]) {
            std::uint32_t h = util::crc32Key(g.key);
            EXPECT_EQ(h & 31, id) << "key " << g.key;
            // Payload stayed attached to its key: column values
            // were derived from the row index.
            std::uint32_t r = (g.c1 - 1) / 10;
            ASSERT_LT(r, 10000u);
            ++delivered[r];
            EXPECT_EQ(g.c2, r * 10 + 2);
            EXPECT_EQ(g.c3, r * 10 + 3);
        }
        total += got[id].size();
    }
    EXPECT_EQ(total, 10000u);
    for (std::uint32_t r = 0; r < 10000; ++r)
        EXPECT_EQ(delivered[r], 1) << "row " << r;
}

TEST(Partition, RawRadixUsesKeyBits)
{
    soc::Soc s(smallParams());
    Table t = makeTable(s, 4000, 7);
    PartitionScheme scheme;
    scheme.kind = PartitionScheme::Kind::RawRadix;
    scheme.radixBits = 5;
    scheme.radixShift = 3;
    auto got = runPartitionAll(s, t, scheme);

    std::uint64_t total = 0;
    for (unsigned id = 0; id < 32; ++id) {
        for (const GotRow &g : got[id])
            EXPECT_EQ((g.key >> 3) & 31, id);
        total += got[id].size();
    }
    EXPECT_EQ(total, 4000u);
}

TEST(Partition, RangeRespectsBoundaries)
{
    soc::Soc s(smallParams());
    Table t = makeTable(s, 6000, 99);
    PartitionScheme scheme;
    scheme.kind = PartitionScheme::Kind::Range;
    // 32 equal ranges over the 32-bit key space.
    for (unsigned i = 0; i < 32; ++i) {
        scheme.bounds.push_back(i == 31
                                    ? ~0ull
                                    : (std::uint64_t(i + 1) << 27) -
                                          1);
    }
    auto got = runPartitionAll(s, t, scheme);

    std::uint64_t total = 0;
    for (unsigned id = 0; id < 32; ++id) {
        for (const GotRow &g : got[id]) {
            if (id > 0) {
                EXPECT_GT(std::uint64_t(g.key),
                          scheme.bounds[id - 1]);
            }
            EXPECT_LE(std::uint64_t(g.key), scheme.bounds[id]);
        }
        total += got[id].size();
    }
    EXPECT_EQ(total, 6000u);
}

TEST(Partition, SlowConsumerTriggersBackPressure)
{
    soc::Soc s(smallParams());
    Table t = makeTable(s, 20000, 5);
    std::uint64_t stalls = 0;
    auto got = runPartitionAll(s, t, PartitionScheme{}, &stalls,
                               30000 /* slow consumers */);

    std::uint64_t total = 0;
    for (auto &v : got)
        total += v.size();
    EXPECT_EQ(total, 20000u);
    EXPECT_GT(stalls, 0u);
}

TEST(Partition, ThroughputIsMultipleGBs)
{
    // Figure 13: the DMS partitions at ~9.3 GB/s, comfortably above
    // HARP's published 6 GB/s for 32-way partitioning.
    soc::Soc s(smallParams());
    Table t = makeTable(s, 60000, 3);
    sim::Tick t0 = s.now();
    auto got = runPartitionAll(s, t, PartitionScheme{}, nullptr, 0,
                               4096 + 4);
    sim::Tick dt = s.now() - t0;

    std::uint64_t total = 0;
    for (auto &v : got)
        total += v.size();
    ASSERT_EQ(total, 60000u);

    double bytes = 60000.0 * 16;
    double gbs = bytes / (double(dt) * 1e-12) / 1e9;
    EXPECT_GT(gbs, 6.0); // beat HARP
    EXPECT_LT(gbs, 12.8);
}

/**
 * @file
 * DMS integration tests on a full SoC: single transfers, the
 * Listing 1 double-buffered streaming loop (the "16 MB through a
 * 32 KB DMEM with three descriptors" claim, scaled), write-back
 * streams, gather/scatter with dense and sparse masks, and the
 * first-silicon gather erratum.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "rt/dms_ctl.hh"
#include "sim/rng.hh"
#include "soc/soc.hh"

using namespace dpu;
using rt::DmsCtl;

namespace {

soc::SocParams
smallParams()
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 64 << 20;
    return p;
}

/** Fill DDR with a deterministic pattern of 32-bit words. */
void
fillWords(soc::Soc &s, mem::Addr base, std::uint32_t n,
          std::uint32_t seed = 0)
{
    for (std::uint32_t i = 0; i < n; ++i)
        s.memory().store().store<std::uint32_t>(base + i * 4,
                                                i * 2654435761u + seed);
}

} // namespace

TEST(Dms, SingleTransferMovesDataAndSetsEvent)
{
    soc::Soc s(smallParams());
    fillWords(s, 0x10000, 256);

    bool ok = false;
    s.start(0, [&](core::DpCore &c) {
        DmsCtl ctl(c, s.dms());
        auto h = ctl.setupDdrToDmem(256, 4, 0x10000, 0, 0, false);
        ctl.push(h);
        ctl.wfe(0);
        ok = true;
        for (std::uint32_t i = 0; i < 256; ++i) {
            EXPECT_EQ(c.dmem().load<std::uint32_t>(i * 4),
                      i * 2654435761u);
        }
        ctl.clearEvent(0);
    });
    s.run();
    EXPECT_TRUE(s.allFinished());
    EXPECT_TRUE(ok);
}

TEST(Dms, TransferTakesPlausibleTime)
{
    soc::Soc s(smallParams());
    s.start(0, [&](core::DpCore &c) {
        DmsCtl ctl(c, s.dms());
        auto h = ctl.setupDdrToDmem(2048, 4, 0, 0, 0, false);
        ctl.push(h);
        ctl.wfe(0);
    });
    sim::Tick t = s.run();
    // 8 KB at ~10 GB/s is ~800 ns plus overheads; well under 10 us.
    EXPECT_GT(t, 800'000u);
    EXPECT_LT(t, 10'000'000u);
}

TEST(Dms, Listing1StreamsWholeRegionInOrder)
{
    // The Listing 1 program, scaled to 2 MB: two 1 KB buffers, one
    // loop descriptor, consume and checksum every word.
    soc::Soc s(smallParams());
    const std::uint32_t total_words = (2 << 20) / 4;
    fillWords(s, 0, total_words);

    std::uint64_t expect = 0;
    for (std::uint32_t i = 0; i < total_words; ++i)
        expect += i * 2654435761u;

    std::uint64_t sum = 0;
    std::uint64_t buffers = 0;
    s.start(0, [&](core::DpCore &c) {
        DmsCtl ctl(c, s.dms());
        rt::StreamReader reader(ctl, 0, total_words * 4, 0, 1024, 2,
                                0);
        reader.forEach([&](std::uint32_t off, std::uint32_t bytes) {
            for (std::uint32_t i = 0; i < bytes; i += 4)
                sum += c.dmem().load<std::uint32_t>(off + i);
            c.dualIssue(bytes / 4, bytes / 4);
            ++buffers;
        });
    });
    s.run();
    EXPECT_TRUE(s.allFinished());
    EXPECT_EQ(sum, expect);
    EXPECT_EQ(buffers, 2048u);
}

TEST(Dms, StreamingApproachesLineRate)
{
    // One core streaming with 8 KB buffers should see multiple GB/s
    // even single-handedly (it cannot saturate DDR alone if its
    // consume loop is slow, so consume cheaply).
    soc::Soc s(smallParams());
    const std::uint64_t bytes = 8 << 20;
    s.start(0, [&](core::DpCore &c) {
        DmsCtl ctl(c, s.dms());
        rt::StreamReader reader(ctl, 0, bytes, 0, 8192, 2, 0);
        reader.forEach([&](std::uint32_t, std::uint32_t) {
            c.cycles(64); // nearly free consumption
        });
    });
    sim::Tick t = s.run();
    double gbs = double(bytes) / (double(t) * 1e-12) / 1e9;
    EXPECT_GT(gbs, 5.0);
    EXPECT_LT(gbs, 12.8);
}

TEST(Dms, StreamWriterRoundTrips)
{
    soc::Soc s(smallParams());
    const std::uint32_t n = 4096;
    s.start(0, [&](core::DpCore &c) {
        DmsCtl ctl(c, s.dms());
        rt::StreamWriter w(ctl, 0x200000, 0, 1024, 2, 8, 1);
        std::uint32_t written = 0;
        while (written < n) {
            std::uint32_t off = w.acquire();
            for (std::uint32_t i = 0; i < 256; ++i)
                c.dmem().store<std::uint32_t>(off + i * 4,
                                              written + i);
            c.dualIssue(256, 256);
            w.commit(1024);
            written += 256;
        }
        w.finish();
    });
    s.run();
    ASSERT_TRUE(s.allFinished());
    for (std::uint32_t i = 0; i < n; ++i) {
        EXPECT_EQ(s.memory().store().load<std::uint32_t>(
                      0x200000 + i * 4), i)
            << "word " << i;
    }
}

TEST(Dms, GatherPacksSelectedRows)
{
    soc::Soc s(smallParams());
    const std::uint32_t rows = 1024;
    fillWords(s, 0x40000, rows);

    // Dense mask 0xF7 repeating (Figure 12's dense case).
    std::vector<std::uint8_t> mask(rows / 8);
    for (auto &b : mask)
        b = 0xF7;

    std::vector<std::uint32_t> got;
    s.start(0, [&](core::DpCore &c) {
        DmsCtl ctl(c, s.dms());
        // Load the mask into BV bank 1 from DMEM offset 8192.
        c.dmem().write(8192, mask.data(), mask.size());
        dms::Descriptor bv;
        bv.type = dms::DescType::DmemToDms;
        bv.rows = std::uint32_t(mask.size());
        bv.ibank = 1;
        bv.dmemAddr = 8192;
        bv.notifyEvent = 1;
        ctl.push(ctl.setup(bv));
        ctl.wfe(1);
        ctl.clearEvent(1);

        dms::Descriptor g;
        g.type = dms::DescType::DdrToDmem;
        g.gatherSrc = true;
        g.ibank = 1;
        g.rows = rows;
        g.colWidth = 4;
        g.ddrAddr = 0x40000;
        g.dmemAddr = 0;
        g.notifyEvent = 2;
        ctl.push(ctl.setup(g));
        ctl.wfe(2);

        for (std::uint32_t i = 0; i < rows * 7 / 8; ++i)
            got.push_back(c.dmem().load<std::uint32_t>(i * 4));
    });
    s.run();
    ASSERT_TRUE(s.allFinished());

    std::vector<std::uint32_t> expect;
    for (std::uint32_t i = 0; i < rows; ++i)
        if ((0xF7 >> (i % 8)) & 1)
            expect.push_back(i * 2654435761u);
    ASSERT_EQ(got.size(), expect.size());
    EXPECT_EQ(got, expect);
}

TEST(Dms, SparseGatherIsSlowerThanDense)
{
    auto run_gather = [](std::uint8_t pattern) {
        soc::Soc s(smallParams());
        const std::uint32_t rows = 32768;
        std::vector<std::uint8_t> mask(rows / 8, pattern);
        s.start(0, [&](core::DpCore &c) {
            DmsCtl ctl(c, s.dms());
            c.dmem().write(8192, mask.data(), mask.size());
            dms::Descriptor bv;
            bv.type = dms::DescType::DmemToDms;
            bv.rows = std::uint32_t(mask.size());
            bv.ibank = 0;
            bv.dmemAddr = 8192;
            bv.notifyEvent = 1;
            ctl.push(ctl.setup(bv));
            ctl.wfe(1);
            ctl.clearEvent(1);

            // Gather in chunks that fit in DMEM.
            const std::uint32_t chunk = 2048; // rows scanned per op
            for (std::uint32_t r = 0; r < rows; r += chunk) {
                dms::Descriptor g;
                g.type = dms::DescType::DdrToDmem;
                g.gatherSrc = true;
                g.ibank = 0;
                g.rows = chunk;
                g.colWidth = 4;
                g.ddrAddr = r * 4;
                g.dmemAddr = 0;
                g.notifyEvent = 2;
                ctl.push(ctl.setup(g));
                ctl.wfe(2);
                ctl.clearEvent(2);
            }
        });
        return s.run();
    };

    sim::Tick dense = run_gather(0xF7);
    sim::Tick sparse = run_gather(0x13);
    // Sparse selects fewer bytes yet must not be proportionally
    // faster: per-run overheads dominate (Figure 12's shape).
    double dense_bytes = 32768.0 * 7 / 8 * 4;
    double sparse_bytes = 32768.0 * 3 / 8 * 4;
    double dense_bw = dense_bytes / double(dense);
    double sparse_bw = sparse_bytes / double(sparse);
    EXPECT_LT(sparse_bw, dense_bw);
}

TEST(Dms, GatherBugWedgesConcurrentGathers)
{
    soc::SocParams p = smallParams();
    p.dms.emulateGatherBug = true;
    soc::Soc s(p);

    std::vector<std::uint8_t> mask(512 / 8, 0xFF);
    for (unsigned id = 0; id < 2; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            DmsCtl ctl(c, s.dms());
            c.dmem().write(8192, mask.data(), mask.size());
            dms::Descriptor bv;
            bv.type = dms::DescType::DmemToDms;
            bv.rows = std::uint32_t(mask.size());
            bv.ibank = id; // separate BV banks
            bv.dmemAddr = 8192;
            bv.notifyEvent = 1;
            ctl.push(ctl.setup(bv));
            ctl.wfe(1);
            ctl.clearEvent(1);

            dms::Descriptor g;
            g.type = dms::DescType::DdrToDmem;
            g.gatherSrc = true;
            g.ibank = id;
            g.rows = 512;
            g.colWidth = 4;
            g.ddrAddr = 0x1000;
            g.dmemAddr = 0;
            g.notifyEvent = 2;
            ctl.push(ctl.setup(g));
            ctl.wfe(2); // the second gather never completes
        });
    }
    s.run();
    EXPECT_TRUE(s.dms().dmac().hung());
    EXPECT_FALSE(s.allFinished());
}

TEST(Dms, SingleIssuerWorkaroundAvoidsTheBug)
{
    soc::SocParams p = smallParams();
    p.dms.emulateGatherBug = true;
    soc::Soc s(p);
    fillWords(s, 0, 512);

    std::vector<std::uint8_t> mask(512 / 8, 0xFF);
    // Serialize: core 1 gathers only after core 0 finished.
    bool core0_done = false;
    for (unsigned id = 0; id < 2; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            DmsCtl ctl(c, s.dms());
            if (id == 1)
                c.blockUntil([&] { return core0_done; });
            c.dmem().write(8192, mask.data(), mask.size());
            dms::Descriptor bv;
            bv.type = dms::DescType::DmemToDms;
            bv.rows = std::uint32_t(mask.size());
            bv.ibank = id;
            bv.dmemAddr = 8192;
            bv.notifyEvent = 1;
            ctl.push(ctl.setup(bv));
            ctl.wfe(1);
            ctl.clearEvent(1);

            dms::Descriptor g;
            g.type = dms::DescType::DdrToDmem;
            g.gatherSrc = true;
            g.ibank = id;
            g.rows = 512;
            g.colWidth = 4;
            g.ddrAddr = 0;
            g.dmemAddr = 0;
            g.notifyEvent = 2;
            ctl.push(ctl.setup(g));
            ctl.wfe(2);
            if (id == 0) {
                core0_done = true;
                s.core(1).wake(c.now());
            }
        });
    }
    s.run();
    EXPECT_FALSE(s.dms().dmac().hung());
    EXPECT_TRUE(s.allFinished());
}

TEST(Dms, ScatterWritesSelectedRows)
{
    soc::Soc s(smallParams());
    const std::uint32_t rows = 256;
    std::vector<std::uint8_t> mask(rows / 8, 0);
    for (std::uint32_t i = 0; i < rows; i += 3)
        mask[i / 8] |= std::uint8_t(1) << (i % 8);

    s.start(0, [&](core::DpCore &c) {
        DmsCtl ctl(c, s.dms());
        c.dmem().write(8192, mask.data(), mask.size());
        dms::Descriptor bv;
        bv.type = dms::DescType::DmemToDms;
        bv.rows = std::uint32_t(mask.size());
        bv.ibank = 2;
        bv.dmemAddr = 8192;
        bv.notifyEvent = 1;
        ctl.push(ctl.setup(bv));
        ctl.wfe(1);
        ctl.clearEvent(1);

        // Packed source values in DMEM.
        std::uint32_t k = 0;
        for (std::uint32_t i = 0; i < rows; i += 3, ++k)
            c.dmem().store<std::uint32_t>(k * 4, 1000 + i);

        dms::Descriptor sc;
        sc.type = dms::DescType::DmemToDdr;
        sc.scatterDst = true;
        sc.ibank = 2;
        sc.rows = rows;
        sc.colWidth = 4;
        sc.ddrAddr = 0x80000;
        sc.dmemAddr = 0;
        sc.notifyEvent = 2;
        ctl.push(ctl.setup(sc), 1);
        ctl.wfe(2);
    });
    s.run();
    ASSERT_TRUE(s.allFinished());
    for (std::uint32_t i = 0; i < rows; ++i) {
        std::uint32_t v = s.memory().store().load<std::uint32_t>(
            0x80000 + i * 4);
        if (i % 3 == 0)
            EXPECT_EQ(v, 1000 + i) << "row " << i;
        else
            EXPECT_EQ(v, 0u) << "row " << i;
    }
}

TEST(Dms, ThirtyTwoCoreAggregateReadBandwidth)
{
    // All 32 dpCores streaming: aggregate bandwidth should approach
    // the DDR3 practical ceiling (Figure 11: >9 GB/s at 8 KB tiles).
    soc::Soc s(smallParams());
    const std::uint64_t per_core = 1 << 20;
    for (unsigned id = 0; id < 32; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            DmsCtl ctl(c, s.dmsFor(id));
            rt::StreamReader reader(ctl, id * per_core, per_core, 0,
                                    8192, 2, 0);
            reader.forEach([&](std::uint32_t, std::uint32_t) {
                c.cycles(64);
            });
        });
    }
    sim::Tick t = s.run();
    ASSERT_TRUE(s.allFinished());
    double gbs = double(32 * per_core) / (double(t) * 1e-12) / 1e9;
    EXPECT_GT(gbs, 8.5);
    EXPECT_LT(gbs, 12.8);
}

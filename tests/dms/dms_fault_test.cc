/**
 * @file
 * DMS-side recovery paths under the fault plane: a wedged DMAC turns
 * an unbounded hang into a bounded wfeFor() timeout; an injected
 * descriptor error completes with error status (no data moved) that
 * the waiter can observe, clear, and retry past; and the bounded
 * wait is a drop-in for wfe() on the happy path.
 */

#include <gtest/gtest.h>

#include "rt/dms_ctl.hh"
#include "sim/fault.hh"
#include "soc/soc.hh"

using namespace dpu;
using rt::DmsCtl;
using WfeResult = dms::Dms::WfeResult;

namespace {

soc::SocParams
smallParams()
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 32 << 20;
    return p;
}

struct PlaneGuard
{
    PlaneGuard() { sim::faultPlane().reset(); }
    ~PlaneGuard() { sim::faultPlane().reset(); }
};

void
fillWords(soc::Soc &s, mem::Addr base, std::uint32_t n)
{
    for (std::uint32_t i = 0; i < n; ++i)
        s.memory().store().store<std::uint32_t>(base + i * 4,
                                                i * 2654435761u);
}

} // namespace

TEST(DmsFault, WedgedDmacTurnsIntoBoundedTimeout)
{
    PlaneGuard g;
    sim::faultPlane().configure("dms.wedge@nth=1,max=1", 11);

    soc::Soc s(smallParams());
    fillWords(s, 0x10000, 256);

    WfeResult res = WfeResult::Ok;
    s.start(0, [&](core::DpCore &c) {
        DmsCtl ctl(c, s.dms());
        ctl.ddrToDmem()
            .rows(256)
            .width(4)
            .from(0x10000)
            .to(0)
            .event(0)
            .push(0);
        res = ctl.wfeFor(0, sim::Tick(500'000));
        // The wedge swallowed the completion: no data arrived.
        EXPECT_EQ(c.dmem().load<std::uint32_t>(0), 0u);
        EXPECT_FALSE(ctl.eventError(0));
    });
    s.run();

    EXPECT_TRUE(s.allFinished()) << "bounded wait must not hang";
    EXPECT_EQ(res, WfeResult::Timeout);
    EXPECT_TRUE(s.dmsFor(0).dmac().hung());
    ASSERT_NE(sim::faultPlane().statGroup(), nullptr);
    EXPECT_EQ(sim::faultPlane().injected(sim::FaultSite::DmsWedge),
              1u);
}

TEST(DmsFault, DescErrorCompletesCleanAndRetrySucceeds)
{
    PlaneGuard g;
    // Budget of one: the first descriptor errors, the retry is clean.
    sim::faultPlane().configure("dms.descError@p=1,max=1", 11);

    soc::Soc s(smallParams());
    fillWords(s, 0x10000, 256);

    WfeResult first = WfeResult::Ok;
    WfeResult second = WfeResult::Timeout;
    s.start(0, [&](core::DpCore &c) {
        DmsCtl ctl(c, s.dms());
        auto push = [&] {
            ctl.ddrToDmem()
                .rows(256)
                .width(4)
                .from(0x10000)
                .to(0)
                .event(0)
                .push(0);
        };

        push();
        first = ctl.wfeFor(0, sim::Tick(1e9));
        EXPECT_TRUE(ctl.eventError(0));
        // Error completion moved no data.
        EXPECT_EQ(c.dmem().load<std::uint32_t>(4), 0u);
        ctl.clearEvent(0);
        EXPECT_FALSE(ctl.eventError(0));

        push();
        second = ctl.wfeFor(0, sim::Tick(1e9));
        EXPECT_FALSE(ctl.eventError(0));
        for (std::uint32_t i = 0; i < 256; ++i)
            EXPECT_EQ(c.dmem().load<std::uint32_t>(i * 4),
                      i * 2654435761u);
        ctl.clearEvent(0);
    });
    s.run();

    EXPECT_TRUE(s.allFinished());
    EXPECT_EQ(first, WfeResult::Error);
    EXPECT_EQ(second, WfeResult::Ok);
    EXPECT_FALSE(s.dmsFor(0).dmac().hung());
}

TEST(DmsFault, BoundedWaitMatchesWfeOnHappyPath)
{
    PlaneGuard g; // plane inert: wfeFor is a drop-in for wfe
    soc::Soc s(smallParams());
    fillWords(s, 0x10000, 512);

    WfeResult res = WfeResult::Timeout;
    sim::Tick doneAt = 0;
    s.start(0, [&](core::DpCore &c) {
        DmsCtl ctl(c, s.dms());
        ctl.ddrToDmem()
            .rows(512)
            .width(4)
            .from(0x10000)
            .to(0)
            .event(2)
            .push(0);
        res = ctl.wfeFor(2, sim::Tick(1e9));
        doneAt = c.now();
        for (std::uint32_t i = 0; i < 512; ++i)
            EXPECT_EQ(c.dmem().load<std::uint32_t>(i * 4),
                      i * 2654435761u);
        ctl.clearEvent(2);
    });
    s.run();

    EXPECT_EQ(res, WfeResult::Ok);
    EXPECT_TRUE(s.allFinished());
    // The core woke on completion, long before its 1 ms deadline
    // (the armed deadline wake still drains later as a no-op).
    EXPECT_LT(doneAt, sim::Tick(1e9)) << "completion, not deadline";
}

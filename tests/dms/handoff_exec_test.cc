/**
 * @file
 * Hand-off plan EXECUTION over the real descriptor path. PR 8's
 * handoff_test.cc pins the pure planning laws; this suite drives the
 * plans: HandoffExec must stage chunks through a real DdrToDmem
 * chain whose boundaries match planRangeHandoff() exactly, complete
 * in (tick, seq) order, and self-throttle on the ping-pong events;
 * HandoffLander must land delivered payloads byte-exactly into DDR,
 * tolerate reordered deliveries, and drop stale generations.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dms/handoff.hh"
#include "dms/handoff_exec.hh"
#include "sim/fault.hh"
#include "soc/soc.hh"

using namespace dpu;
using dms::HandoffExec;
using dms::HandoffExecParams;
using dms::HandoffLander;
using dms::HandoffPlan;
using dms::planRangeHandoff;

namespace {

constexpr mem::Addr srcBase = 0x40000;
constexpr mem::Addr dstBase = 0x80000;
constexpr std::uint64_t stateBytes = 1152; // 4 x 256 + 128 tail
constexpr std::uint64_t chunkBytes = 256;

soc::SocParams
smallParams()
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 16 << 20;
    return p;
}

/** The exec role used throughout: channel 0, tight buffers. */
HandoffExecParams
execRole()
{
    HandoffExecParams p;
    p.channel = 0;
    p.bufBase = 0x5000;
    p.bufBytes = 256;
    p.chainBase = 0x6000;
    p.chainBytes = 0x200;
    p.eventA = 16;
    p.eventB = 17;
    return p;
}

/** The lander role: disjoint channel, buffers, slots and events. */
HandoffExecParams
landerRole()
{
    HandoffExecParams p;
    p.channel = 1;
    p.bufBase = 0x4000;
    p.bufBytes = 256;
    p.chainBase = 0x6800;
    p.chainBytes = 0x200;
    p.eventA = 18;
    p.eventB = 19;
    return p;
}

std::uint8_t
patByte(std::uint64_t i)
{
    return std::uint8_t(0xA5 ^ (i * 31) ^ (i >> 7));
}

void
seedSource(soc::Soc &s)
{
    std::vector<std::uint8_t> img(stateBytes);
    for (std::uint64_t i = 0; i < stateBytes; ++i)
        img[i] = patByte(i);
    s.memory().store().write(srcBase, img.data(), img.size());
}

std::vector<std::uint8_t>
ddrImage(soc::Soc &s, mem::Addr base)
{
    std::vector<std::uint8_t> img(stateBytes);
    s.memory().store().read(base, img.data(), img.size());
    return img;
}

struct PlaneGuard
{
    PlaneGuard() { sim::faultPlane().reset(); }
    ~PlaneGuard() { sim::faultPlane().reset(); }
};

} // namespace

// ----------------------------------------------------------------
// The driver's chain is the plan's chain
// ----------------------------------------------------------------

TEST(HandoffExecTest, ChainMatchesPlanBoundariesExactly)
{
    soc::Soc s(smallParams());
    seedSource(s);
    const HandoffExecParams role = execRole();
    HandoffExec exec(s.dms(), 0, s.core(0).dmem(), role);

    const HandoffPlan plan =
        planRangeHandoff(srcBase, stateBytes, chunkBytes, 8);
    ASSERT_EQ(plan.chunks.size(), 5u);

    HandoffExec *e = &exec;
    exec.start(plan, [e](unsigned chunk, bool) {
        e->release(chunk);
    });

    // Byte-for-byte the chain plan.descriptors() would emit: same
    // chunk boundaries, ping-pong buffers, alternating events.
    const std::vector<dms::Descriptor> want = plan.descriptors(
        role.bufBase, role.bufBytes, std::int8_t(role.eventA),
        std::int8_t(role.eventB));
    ASSERT_EQ(exec.chain().size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        const dms::Descriptor &g = exec.chain()[i];
        EXPECT_EQ(g.type, dms::DescType::DdrToDmem) << i;
        EXPECT_EQ(g.ddrAddr, plan.chunks[i].ddrAddr) << i;
        EXPECT_EQ(g.rows, plan.chunks[i].rows) << i;
        EXPECT_EQ(g.colWidth, plan.chunks[i].colWidth) << i;
        EXPECT_EQ(g.dmemAddr, want[i].dmemAddr) << i;
        EXPECT_EQ(g.notifyEvent, want[i].notifyEvent) << i;
        // The ping-pong law, spelled out: even chunks fill the ping
        // buffer and notify eventA, odd chunks the pong / eventB.
        EXPECT_EQ(g.dmemAddr,
                  role.bufBase + (i % 2 ? role.bufBytes : 0))
            << i;
        EXPECT_EQ(g.notifyEvent,
                  std::int8_t(i % 2 ? role.eventB : role.eventA))
            << i;
    }

    s.run();
    EXPECT_EQ(exec.chunksStaged(), 5u);
    EXPECT_EQ(exec.chunksReleased(), 5u);
    EXPECT_FALSE(exec.active());
}

TEST(HandoffExecTest, StagesSourceBytesInTickSeqOrder)
{
    soc::Soc s(smallParams());
    seedSource(s);
    const HandoffExecParams role = execRole();
    HandoffExec exec(s.dms(), 0, s.core(0).dmem(), role);

    const HandoffPlan plan =
        planRangeHandoff(srcBase, stateBytes, chunkBytes, 8);

    std::vector<unsigned> order;
    std::vector<sim::Tick> ticks;
    std::vector<bool> match;
    exec.start(plan, [&](unsigned chunk, bool error) {
        EXPECT_FALSE(error);
        order.push_back(chunk);
        ticks.push_back(s.now());
        // Snapshot the staging buffer BEFORE releasing: the bytes
        // must be exactly this chunk's DDR slice.
        const dms::HandoffChunk &c = plan.chunks[chunk];
        std::vector<std::uint8_t> got(c.bytes());
        s.core(0).dmem().read(
            role.bufBase + (chunk % 2) * role.bufBytes, got.data(),
            got.size());
        bool ok = true;
        for (std::uint64_t i = 0; i < c.bytes(); ++i)
            ok = ok && got[i] == patByte(c.ddrAddr - srcBase + i);
        match.push_back(ok);
        exec.release(chunk);
    });
    s.run();

    // Completions arrive in (tick, seq) order: chunk indices exactly
    // 0..n-1, at non-decreasing ticks.
    ASSERT_EQ(order.size(), plan.chunks.size());
    for (unsigned i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
    for (std::size_t i = 1; i < ticks.size(); ++i)
        EXPECT_GE(ticks[i], ticks[i - 1]);
    for (std::size_t i = 0; i < match.size(); ++i)
        EXPECT_TRUE(match[i]) << "chunk " << i << " bytes differ";
}

TEST(HandoffExecTest, ChainSelfThrottlesOnUnreleasedBuffers)
{
    soc::Soc s(smallParams());
    seedSource(s);
    HandoffExec exec(s.dms(), 0, s.core(0).dmem(), execRole());

    const HandoffPlan plan =
        planRangeHandoff(srcBase, stateBytes, chunkBytes, 8);
    exec.start(plan, [](unsigned, bool) { /* hold every buffer */ });

    // With neither buffer released, the chain parks after filling
    // ping and pong: descriptor i+2 waits on buffer i's event.
    s.run();
    EXPECT_EQ(exec.chunksStaged(), 2u);
    EXPECT_TRUE(exec.active());

    // Each release lets exactly one more descriptor through.
    exec.release(0);
    s.run();
    EXPECT_EQ(exec.chunksStaged(), 3u);
    exec.release(1);
    s.run();
    EXPECT_EQ(exec.chunksStaged(), 4u);
    exec.release(2);
    exec.release(3);
    s.run();
    EXPECT_EQ(exec.chunksStaged(), 5u);
    exec.release(4);
    EXPECT_FALSE(exec.active());
    EXPECT_EQ(exec.chunksReleased(), 5u);
}

TEST(HandoffExecTest, DescriptorErrorSurfacesToConsumer)
{
    PlaneGuard g;
    sim::faultPlane().configure("dms.descError@p=1,max=1", 7);

    soc::Soc s(smallParams());
    seedSource(s);
    HandoffExec exec(s.dms(), 0, s.core(0).dmem(), execRole());

    unsigned errors = 0;
    exec.start(planRangeHandoff(srcBase, stateBytes, chunkBytes, 8),
               [&](unsigned chunk, bool error) {
                   if (error)
                       ++errors;
                   exec.release(chunk);
               });
    s.run();

    // The plane's budget of one: exactly one chunk completes with
    // the error flag; the chain still finishes past it.
    EXPECT_EQ(errors, 1u);
    EXPECT_EQ(exec.chunksStaged(), 5u);
    EXPECT_FALSE(exec.active());
}

// ----------------------------------------------------------------
// Lander: byte-exact landing, reorder tolerance, stale generations
// ----------------------------------------------------------------

namespace {

/** Deliver every chunk of the canonical plan to @p lander with the
 *  source pattern's bytes, in @p order. */
void
deliverAll(HandoffLander &lander, unsigned gen,
           const HandoffPlan &plan, const std::vector<unsigned> &order)
{
    for (unsigned chunk : order) {
        const dms::HandoffChunk &c = plan.chunks[chunk];
        std::vector<std::uint8_t> payload(c.bytes());
        for (std::uint64_t i = 0; i < c.bytes(); ++i)
            payload[i] = patByte(c.ddrAddr - srcBase + i);
        lander.deliver(gen, chunk,
                       dstBase + (c.ddrAddr - srcBase), payload,
                       c.colWidth);
    }
}

} // namespace

TEST(HandoffLanderTest, LandsDeliveredChunksByteExactly)
{
    soc::Soc s(smallParams());
    HandoffLander lander(s.dms(), 0, s.core(0).dmem(), landerRole());

    const HandoffPlan plan =
        planRangeHandoff(srcBase, stateBytes, chunkBytes, 8);
    const unsigned gen = lander.expect(unsigned(plan.chunks.size()));
    deliverAll(lander, gen, plan, {0, 1, 2, 3, 4});
    s.run();

    EXPECT_EQ(lander.landed(), 5u);
    EXPECT_EQ(lander.failed(), 0u);
    EXPECT_FALSE(lander.busy());
    const std::vector<std::uint8_t> img = ddrImage(s, dstBase);
    for (std::uint64_t i = 0; i < stateBytes; ++i)
        ASSERT_EQ(img[i], patByte(i)) << "byte " << i;
}

TEST(HandoffLanderTest, ToleratesReorderedDeliveries)
{
    soc::Soc s(smallParams());
    HandoffLander lander(s.dms(), 0, s.core(0).dmem(), landerRole());

    const HandoffPlan plan =
        planRangeHandoff(srcBase, stateBytes, chunkBytes, 8);
    const unsigned gen = lander.expect(unsigned(plan.chunks.size()));

    // Retransmit-style reorder: later chunks first. Chunks whose
    // ping/pong buffer is occupied queue and land once it frees.
    deliverAll(lander, gen, plan, {1, 0, 3, 2, 4});
    EXPECT_TRUE(lander.busy());
    s.run();

    EXPECT_EQ(lander.landed(), 5u);
    EXPECT_EQ(lander.staleDeliveries(), 0u);
    EXPECT_FALSE(lander.busy());
    const std::vector<std::uint8_t> img = ddrImage(s, dstBase);
    for (std::uint64_t i = 0; i < stateBytes; ++i)
        ASSERT_EQ(img[i], patByte(i)) << "byte " << i;
}

TEST(HandoffLanderTest, StaleGenerationsDropWithoutLanding)
{
    soc::Soc s(smallParams());
    HandoffLander lander(s.dms(), 0, s.core(0).dmem(), landerRole());

    const HandoffPlan plan =
        planRangeHandoff(srcBase, stateBytes, chunkBytes, 8);
    const unsigned aborted =
        lander.expect(unsigned(plan.chunks.size()));
    lander.cancel();

    // The aborted migration's leftovers arrive after the cancel:
    // dropped, counted, no bytes move.
    deliverAll(lander, aborted, plan, {0, 1});
    s.run();
    EXPECT_EQ(lander.staleDeliveries(), 2u);
    EXPECT_EQ(lander.landed(), 0u);
    EXPECT_FALSE(lander.busy());
    const std::vector<std::uint8_t> img = ddrImage(s, dstBase);
    for (std::uint64_t i = 0; i < stateBytes; ++i)
        ASSERT_EQ(img[i], 0u) << "stale delivery moved byte " << i;

    // A successor migration re-arms cleanly with a fresh token
    // (cancel() already burned one generation).
    const unsigned fresh = lander.expect(2);
    EXPECT_GT(fresh, aborted);
    deliverAll(lander, fresh, plan, {0, 1});
    s.run();
    EXPECT_EQ(lander.landed(), 2u);
}

// ----------------------------------------------------------------
// Round trip: exec stages, lander lands, images match
// ----------------------------------------------------------------

TEST(HandoffExecTest, RoundTripReproducesSourceImage)
{
    soc::Soc s(smallParams());
    seedSource(s);
    const HandoffExecParams srcRole = execRole();
    HandoffExec exec(s.dms(), 0, s.core(0).dmem(), srcRole);
    HandoffLander lander(s.dms(), 0, s.core(0).dmem(), landerRole());

    const HandoffPlan plan =
        planRangeHandoff(srcBase, stateBytes, chunkBytes, 8);
    const unsigned gen = lander.expect(unsigned(plan.chunks.size()));

    // The exec's consumer plays the balancer's shipping loop with a
    // zero-latency link: snapshot the staged buffer, release it,
    // hand the payload straight to the lander.
    exec.start(plan, [&](unsigned chunk, bool error) {
        ASSERT_FALSE(error);
        const dms::HandoffChunk &c = plan.chunks[chunk];
        std::vector<std::uint8_t> payload(c.bytes());
        s.core(0).dmem().read(
            srcRole.bufBase + (chunk % 2) * srcRole.bufBytes,
            payload.data(), payload.size());
        exec.release(chunk);
        lander.deliver(gen, chunk,
                       dstBase + (c.ddrAddr - srcBase), payload,
                       c.colWidth);
    });
    s.run();

    EXPECT_FALSE(exec.active());
    EXPECT_EQ(lander.landed(), plan.chunks.size());
    EXPECT_FALSE(lander.busy());
    EXPECT_EQ(ddrImage(s, dstBase), ddrImage(s, srcBase));
}

// ----------------------------------------------------------------
// Misuse is loud
// ----------------------------------------------------------------

TEST(HandoffExecDeathTest, StartWhileActiveDies)
{
    soc::Soc s(smallParams());
    seedSource(s);
    HandoffExec exec(s.dms(), 0, s.core(0).dmem(), execRole());
    const HandoffPlan plan =
        planRangeHandoff(srcBase, stateBytes, chunkBytes, 8);
    exec.start(plan, [](unsigned, bool) {});
    EXPECT_DEATH(exec.start(plan, [](unsigned, bool) {}),
                 "already running");
}

TEST(HandoffExecDeathTest, ReleaseBeforeStagingDies)
{
    soc::Soc s(smallParams());
    seedSource(s);
    HandoffExec exec(s.dms(), 0, s.core(0).dmem(), execRole());
    exec.start(planRangeHandoff(srcBase, stateBytes, chunkBytes, 8),
               [](unsigned, bool) {});
    EXPECT_DEATH(exec.release(0), "release before staging");
}

TEST(HandoffExecDeathTest, PlanOverrunningChainWindowDies)
{
    soc::Soc s(smallParams());
    HandoffExecParams role = execRole();
    role.chainBytes = 32; // room for two descriptors, plan has five
    HandoffExec exec(s.dms(), 0, s.core(0).dmem(), role);
    EXPECT_DEATH(
        exec.start(planRangeHandoff(srcBase, stateBytes, chunkBytes,
                                    8),
                   [](unsigned, bool) {}),
        "overruns the chain");
}

TEST(HandoffLanderDeathTest, OversizePayloadDies)
{
    soc::Soc s(smallParams());
    HandoffLander lander(s.dms(), 0, s.core(0).dmem(), landerRole());
    const unsigned gen = lander.expect(1);
    const std::vector<std::uint8_t> fat(512, 0); // bufBytes is 256
    EXPECT_DEATH(lander.deliver(gen, 0, dstBase, fat, 8),
                 "bounce buffer");
}

TEST(HandoffLanderDeathTest, RaggedPayloadDies)
{
    soc::Soc s(smallParams());
    HandoffLander lander(s.dms(), 0, s.core(0).dmem(), landerRole());
    const unsigned gen = lander.expect(1);
    const std::vector<std::uint8_t> ragged(12, 0);
    EXPECT_DEATH(lander.deliver(gen, 0, dstBase, ragged, 8),
                 "whole number of rows");
}

TEST(HandoffLanderDeathTest, ReArmWhileBusyDies)
{
    soc::Soc s(smallParams());
    HandoffLander lander(s.dms(), 0, s.core(0).dmem(), landerRole());
    const unsigned gen = lander.expect(1);
    const std::vector<std::uint8_t> payload(64, 1);
    lander.deliver(gen, 0, dstBase, payload, 8);
    EXPECT_DEATH(lander.expect(1), "re-armed while busy");
}

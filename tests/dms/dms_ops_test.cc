/**
 * @file
 * Coverage for the remaining Table 1 descriptor operations: RID-list
 * gather (RLE mode), DMS->DDR dumps of the internal CRC/CID
 * memories, DMS->DMS internal moves, EventCtl control descriptors,
 * the event file's edge-triggered callbacks, and the redundant-flush
 * detector from the Section 4 tooling story.
 */

#include <gtest/gtest.h>

#include <vector>

#include "rt/dms_ctl.hh"
#include "soc/soc.hh"
#include "util/crc32.hh"

using namespace dpu;
using rt::DmsCtl;

namespace {

soc::SocParams
smallParams()
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 32 << 20;
    return p;
}

} // namespace

TEST(DmsOps, RidListGatherFetchesExactRows)
{
    soc::Soc s(smallParams());
    for (std::uint32_t i = 0; i < 4096; ++i)
        s.memory().store().store<std::uint32_t>(0x10000 + i * 4,
                                                i * 7);

    // Ascending, partly consecutive row ids (consecutive ids merge
    // into one run).
    std::vector<std::uint32_t> rids = {3,  4,  5,  100, 101,
                                       512, 513, 514, 515, 4000};
    std::vector<std::uint32_t> got(rids.size());
    s.start(0, [&](core::DpCore &c) {
        DmsCtl ctl(c, s.dms());
        c.dmem().write(8192, rids.data(), rids.size() * 4);
        dms::Descriptor bv;
        bv.type = dms::DescType::DmemToDms;
        bv.rle = true;
        bv.rows = std::uint32_t(rids.size());
        bv.ibank = 2;
        bv.dmemAddr = 8192;
        bv.notifyEvent = 1;
        ctl.push(ctl.setup(bv));
        ctl.wfe(1);
        ctl.clearEvent(1);

        dms::Descriptor g;
        g.type = dms::DescType::DdrToDmem;
        g.gatherSrc = true;
        g.rle = true;
        g.ibank = 2;
        g.rows = std::uint32_t(rids.size());
        g.colWidth = 4;
        g.ddrAddr = 0x10000;
        g.dmemAddr = 0;
        g.notifyEvent = 2;
        ctl.push(ctl.setup(g));
        ctl.wfe(2);
        c.dmem().read(0, got.data(), got.size() * 4);
    });
    s.run();
    ASSERT_TRUE(s.allFinished());
    for (std::size_t i = 0; i < rids.size(); ++i)
        EXPECT_EQ(got[i], rids[i] * 7) << "rid " << rids[i];
}

TEST(DmsOps, CrcMemoryDumpsToDdr)
{
    // Partition-pipeline hash results can be materialized to DRAM
    // (Table 1: "Store hash/CID memory to DDR").
    soc::Soc s(smallParams());
    const std::uint32_t rows = 128;
    for (std::uint32_t r = 0; r < rows; ++r)
        s.memory().store().store<std::uint32_t>(0x20000 + r * 4,
                                                r * 31 + 5);

    s.start(0, [&](core::DpCore &c) {
        DmsCtl ctl(c, s.dms());
        dms::Descriptor load;
        load.type = dms::DescType::DdrToDms;
        load.rows = rows;
        load.colWidth = 4;
        load.nCols = 1;
        load.colStride = rows * 4;
        load.ddrAddr = 0x20000;
        load.ibank = 0;
        ctl.push(ctl.setup(load));

        dms::Descriptor hash;
        hash.type = dms::DescType::HashCol;
        hash.rows = rows;
        hash.colWidth = 4;
        hash.nCols = 1;
        hash.ibank = 0;
        hash.ibank2 = 0;
        hash.cidBank = 0;
        ctl.push(ctl.setup(hash));

        dms::Descriptor dump;
        dump.type = dms::DescType::DmsToDdr;
        dump.imem = dms::IMem::Crc;
        dump.ibank = 0;
        dump.rows = rows;
        dump.colWidth = 4;
        dump.ddrAddr = 0x40000;
        dump.notifyEvent = 3;
        ctl.push(ctl.setup(dump));
        ctl.wfe(3);

        dms::Descriptor cid;
        cid.type = dms::DescType::DmsToDdr;
        cid.imem = dms::IMem::Cid;
        cid.ibank = 0;
        cid.rows = rows;
        cid.colWidth = 1;
        cid.ddrAddr = 0x50000;
        cid.notifyEvent = 4;
        ctl.push(ctl.setup(cid));
        ctl.wfe(4);
    });
    s.run();
    ASSERT_TRUE(s.allFinished());

    for (std::uint32_t r = 0; r < rows; ++r) {
        std::uint32_t key = r * 31 + 5;
        std::uint32_t h = util::crc32(&key, 4);
        EXPECT_EQ(s.memory().store().load<std::uint32_t>(0x40000 +
                                                         r * 4),
                  h) << "row " << r;
        EXPECT_EQ(s.memory().store().load<std::uint8_t>(0x50000 + r),
                  h & 31) << "row " << r;
    }
}

TEST(DmsOps, InternalMoveCopiesBetweenBanks)
{
    soc::Soc s(smallParams());
    s.start(0, [&](core::DpCore &c) {
        DmsCtl ctl(c, s.dms());
        // Load 64 words into CMEM bank 1 from DDR.
        for (std::uint32_t i = 0; i < 64; ++i)
            s.memory().store().store<std::uint32_t>(0x60000 + i * 4,
                                                    0xA0 + i);
        dms::Descriptor load;
        load.type = dms::DescType::DdrToDms;
        load.rows = 64;
        load.colWidth = 4;
        load.nCols = 1;
        load.colStride = 256;
        load.ddrAddr = 0x60000;
        load.ibank = 1;
        ctl.push(ctl.setup(load));

        // CMEM bank 1 -> BV bank 3 (256 bytes).
        dms::Descriptor mv;
        mv.type = dms::DescType::DmsToDms;
        mv.imem = dms::IMem::Cmem;
        mv.ibank = 1;
        mv.imem2 = dms::IMem::Bv;
        mv.ibank2 = 3;
        mv.rows = 256;
        mv.notifyEvent = 5;
        ctl.push(ctl.setup(mv));
        ctl.wfe(5);
    });
    s.run();
    ASSERT_TRUE(s.allFinished());
    const std::uint8_t *bv = s.dms().dmac().bvBank(3);
    for (std::uint32_t i = 0; i < 64; ++i) {
        std::uint32_t v;
        std::memcpy(&v, bv + i * 4, 4);
        EXPECT_EQ(v, 0xA0 + i);
    }
}

TEST(DmsOps, EventCtlDescriptorsSetClearAndGate)
{
    soc::Soc s(smallParams());
    sim::Tick gated_at = 0;
    s.start(0, [&](core::DpCore &c) {
        DmsCtl ctl(c, s.dms());
        // Set events 5 and 6 from the descriptor stream.
        dms::Descriptor set;
        set.type = dms::DescType::EventCtl;
        set.eventOp = dms::EventOp::Set;
        set.eventMask = (1u << 5) | (1u << 6);
        ctl.push(ctl.setup(set));
        ctl.wfe(5);
        ctl.wfe(6);

        // A WaitClear gate parks the channel until the core clears
        // event 5; the transfer behind it must not run early.
        dms::Descriptor gate;
        gate.type = dms::DescType::EventCtl;
        gate.eventOp = dms::EventOp::WaitClear;
        gate.eventMask = 1u << 5;
        ctl.push(ctl.setup(gate));
        auto xfer = ctl.setupDdrToDmem(64, 4, 0x100, 0, 7, false);
        ctl.push(xfer);

        c.sleepCycles(4000);
        EXPECT_FALSE(ctl.eventSet(7)); // still gated
        ctl.clearEvent(5);
        ctl.wfe(7);
        gated_at = c.now();
        ctl.clearEvent(6);
        ctl.clearEvent(7);
    });
    s.run();
    ASSERT_TRUE(s.allFinished());
    EXPECT_GT(gated_at, sim::dpCoreClock.cyclesToTicks(4000));
}

TEST(DmsOps, EventFileEdgeCallbacksFireOnce)
{
    dms::EventFile ef;
    int sets = 0, clears = 0;
    ef.whenSet(3, [&] { ++sets; });
    ef.whenClear(3, [&] { ++clears; });
    ef.set(3);
    ef.set(3); // already set: no edge
    EXPECT_EQ(sets, 1);
    EXPECT_EQ(clears, 0);
    ef.clear(3);
    ef.clear(3);
    EXPECT_EQ(clears, 1);
    // Callbacks are one-shot.
    ef.set(3);
    EXPECT_EQ(sets, 1);
}

TEST(DmsOps, RedundantFlushDetectorCountsNoOpFlushes)
{
    soc::Soc s(smallParams());
    s.start(0, [&](core::DpCore &c) {
        c.store<std::uint32_t>(0x7000, 1);
        c.cacheFlush(0x7000, 4);  // real work
        c.cacheFlush(0x7000, 4);  // redundant: already clean
        c.cacheFlush(0x9000, 64); // redundant: never written
    });
    s.run();
    EXPECT_EQ(s.core(0).statGroup().get("cacheFlushes"), 3u);
    EXPECT_EQ(s.core(0).statGroup().get("redundantFlushes"), 2u);
}

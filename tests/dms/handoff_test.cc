/**
 * @file
 * Hand-off staging plan tests (dms/handoff.hh): chunking must tile
 * the partition range exactly (contiguous, non-overlapping, whole
 * elements), respect the 16-bit Rows encoding limit whatever the
 * chunk knob says, and emit a DdrToDmem chain that ping-pongs the
 * double buffer and its completion events (the Listing 1 idiom).
 */

#include <gtest/gtest.h>

#include "dms/handoff.hh"

using namespace dpu;
using dms::HandoffPlan;
using dms::planRangeHandoff;

TEST(HandoffPlan, ChunksTileTheRangeExactly)
{
    const mem::Addr base = 0x100000;
    const std::uint64_t bytes = std::uint64_t(1) << 20; // 1 MB
    const HandoffPlan plan =
        planRangeHandoff(base, bytes, 256 * 1024, 8);

    ASSERT_EQ(plan.chunks.size(), 4u);
    EXPECT_EQ(plan.base, base);
    EXPECT_EQ(plan.totalBytes(), bytes);
    mem::Addr at = base;
    for (const dms::HandoffChunk &c : plan.chunks) {
        EXPECT_EQ(c.ddrAddr, at); // contiguous, no overlap
        EXPECT_EQ(c.colWidth, 8u);
        EXPECT_LE(c.rows, 0xffffu);
        at += c.bytes();
    }
    EXPECT_EQ(at, base + bytes);
}

TEST(HandoffPlan, RowsClampToTheTable2EncodingLimit)
{
    // A 1 MB chunk of 1-byte elements would be 2^20 rows; the
    // 16-bit Rows field caps every descriptor at 65535.
    const std::uint64_t bytes = 200'000;
    const HandoffPlan plan =
        planRangeHandoff(0, bytes, std::uint64_t(1) << 20, 1);
    ASSERT_EQ(plan.chunks.size(), 4u);
    EXPECT_EQ(plan.chunks[0].rows, 0xffffu);
    EXPECT_EQ(plan.chunks[1].rows, 0xffffu);
    EXPECT_EQ(plan.chunks[2].rows, 0xffffu);
    EXPECT_EQ(plan.chunks[3].rows, 200'000u - 3 * 0xffffu);
    EXPECT_EQ(plan.totalBytes(), bytes);
}

TEST(HandoffPlan, TrailingPartialChunkCoversTheRemainder)
{
    // 100 KB in 32 KB chunks of 4 B elements: three full chunks
    // plus a 4 KB tail.
    const HandoffPlan plan =
        planRangeHandoff(0x4000, 100 * 1024, 32 * 1024, 4);
    ASSERT_EQ(plan.chunks.size(), 4u);
    EXPECT_EQ(plan.chunks[0].rows, 8192u);
    EXPECT_EQ(plan.chunks[3].rows, 1024u);
    EXPECT_EQ(plan.totalBytes(), 100u * 1024u);
}

TEST(HandoffDescriptors, ChainPingPongsBuffersAndEvents)
{
    const HandoffPlan plan =
        planRangeHandoff(0, 128 * 1024, 32 * 1024, 8);
    ASSERT_EQ(plan.chunks.size(), 4u);
    const std::uint16_t dmem = 0x1000, buf = 0x8000;
    const auto descs = plan.descriptors(dmem, buf, 2, 3);
    ASSERT_EQ(descs.size(), 4u);
    for (std::size_t i = 0; i < descs.size(); ++i) {
        const dms::Descriptor &d = descs[i];
        EXPECT_EQ(d.type, dms::DescType::DdrToDmem);
        EXPECT_EQ(d.rows, plan.chunks[i].rows);
        EXPECT_EQ(d.ddrAddr, plan.chunks[i].ddrAddr);
        // Even chunks land in the first buffer and signal event_a;
        // odd chunks in the second, signalling event_b.
        const bool ping = i % 2 == 0;
        EXPECT_EQ(d.dmemAddr,
                  std::uint16_t(dmem + (ping ? 0 : buf)));
        EXPECT_EQ(d.notifyEvent, ping ? 2 : 3);
    }
}

TEST(HandoffDeath, MalformedPlansFailLoudly)
{
    // A range that is not a whole number of elements.
    EXPECT_DEATH(planRangeHandoff(0, 1001, 4096, 8), "whole");
    // An unsupported element width.
    EXPECT_DEATH(planRangeHandoff(0, 1024, 4096, 3), "width");
    // Ping-pong with a single event cannot double-buffer.
    const HandoffPlan plan = planRangeHandoff(0, 4096, 1024, 8);
    EXPECT_DEATH(plan.descriptors(0, 1024, 1, 1), "distinct");
    // A chunk that overflows the staging buffer.
    EXPECT_DEATH(plan.descriptors(0, 512, 0, 1), "overflow");
}

/**
 * @file
 * Descriptor wire-format tests: explicit Table 2 bit positions for
 * the DDR->DMEM layout, plus encode/decode round-trip properties
 * over every descriptor type.
 */

#include <gtest/gtest.h>

#include "dms/descriptor.hh"
#include "sim/rng.hh"

using namespace dpu::dms;

TEST(Descriptor, Table2BitPositions)
{
    Descriptor d;
    d.type = DescType::DdrToDmem;
    d.notifyEvent = 5;
    d.waitEvent = 3;
    d.linkAddr = 0xBEEF;
    d.colWidth = 4;
    d.srcAddrInc = true;
    d.rows = 256;
    d.dmemAddr = 0x1234;
    d.ddrAddr = 0x3'4567'89ABull; // 36-bit address

    EncodedDesc e = encode(d);

    // Word0: Type[31:28], NotifyEn[27], WaitEn[26], Notify[25:21],
    // Wait[20:16], LinkAddr[15:0].
    EXPECT_EQ(e.w[0] >> 28, 1u);
    EXPECT_EQ((e.w[0] >> 27) & 1, 1u);
    EXPECT_EQ((e.w[0] >> 26) & 1, 1u);
    EXPECT_EQ((e.w[0] >> 21) & 0x1f, 5u);
    EXPECT_EQ((e.w[0] >> 16) & 0x1f, 3u);
    EXPECT_EQ(e.w[0] & 0xffff, 0xBEEFu);

    // Word1: ColWidth[30:28] (code 2 = 4 B), SrcAddrInc[17],
    // DDRAddr[3:0].
    EXPECT_EQ((e.w[1] >> 28) & 0x7, 2u);
    EXPECT_EQ((e.w[1] >> 17) & 1, 1u);
    EXPECT_EQ((e.w[1] >> 16) & 1, 0u);
    EXPECT_EQ(e.w[1] & 0xf, 0xBu);

    // Word2: Rows[31:16], DMEMAddr[15:0].
    EXPECT_EQ(e.w[2] >> 16, 256u);
    EXPECT_EQ(e.w[2] & 0xffff, 0x1234u);

    // Word3: DDRAddr[35:4].
    EXPECT_EQ(e.w[3], std::uint32_t(0x3'4567'89ABull >> 4));
}

TEST(Descriptor, RoundTripDdrToDmem)
{
    Descriptor d;
    d.type = DescType::DdrToDmem;
    d.notifyEvent = 0; // event 0 is legal (Listing 1)
    d.rows = 1024;
    d.colWidth = 8;
    d.ddrAddr = 0xFEDCBA98ull;
    d.dmemAddr = 4096;
    d.srcAddrInc = true;

    Descriptor back = decode(encode(d));
    EXPECT_EQ(back.type, d.type);
    EXPECT_EQ(back.notifyEvent, 0);
    EXPECT_EQ(back.waitEvent, -1);
    EXPECT_EQ(back.rows, d.rows);
    EXPECT_EQ(back.colWidth, d.colWidth);
    EXPECT_EQ(back.ddrAddr, d.ddrAddr);
    EXPECT_EQ(back.dmemAddr, d.dmemAddr);
    EXPECT_TRUE(back.srcAddrInc);
    EXPECT_FALSE(back.dstAddrInc);
}

TEST(Descriptor, RoundTripGatherCarriesBvBank)
{
    Descriptor d;
    d.type = DescType::DdrToDmem;
    d.gatherSrc = true;
    d.ibank = 3;
    d.rows = 500;
    d.colWidth = 4;
    d.ddrAddr = 0x1000; // must be 4 B aligned for gather
    d.dmemAddr = 64;

    Descriptor back = decode(encode(d));
    EXPECT_TRUE(back.gatherSrc);
    EXPECT_EQ(back.ibank, 3);
    EXPECT_EQ(back.ddrAddr, 0x1000u);
}

TEST(Descriptor, RoundTripDdrToDms)
{
    Descriptor d;
    d.type = DescType::DdrToDms;
    d.rows = 256;
    d.colWidth = 4;
    d.nCols = 4;
    d.colStride = 1 << 20;
    d.ibank = 2;
    d.ddrAddr = 0xABCDE0ull;
    d.srcAddrInc = false;

    Descriptor back = decode(encode(d));
    EXPECT_EQ(back.type, d.type);
    EXPECT_EQ(back.rows, 256u);
    EXPECT_EQ(back.nCols, 4);
    EXPECT_EQ(back.colStride, 1u << 20);
    EXPECT_EQ(back.ibank, 2);
    EXPECT_EQ(back.imem, IMem::Cmem);
    EXPECT_EQ(back.ddrAddr, 0xABCDE0ull);
}

TEST(Descriptor, RoundTripHashCol)
{
    Descriptor d;
    d.type = DescType::HashCol;
    d.rows = 200;
    d.colWidth = 4;
    d.nCols = 5;
    d.ibank = 1;
    d.ibank2 = 1;
    d.cidBank = 1;
    d.rangeMode = true;

    Descriptor back = decode(encode(d));
    EXPECT_EQ(back.rows, 200u);
    EXPECT_EQ(back.nCols, 5);
    EXPECT_EQ(back.ibank, 1);
    EXPECT_EQ(back.ibank2, 1);
    EXPECT_EQ(back.cidBank, 1);
    EXPECT_TRUE(back.rangeMode);
}

TEST(Descriptor, RoundTripLoop)
{
    Descriptor d;
    d.type = DescType::Loop;
    d.linkAddr = 0x7F00;
    d.iterations = 8191; // the Listing 1 value

    Descriptor back = decode(encode(d));
    EXPECT_EQ(back.type, DescType::Loop);
    EXPECT_EQ(back.linkAddr, 0x7F00u);
    EXPECT_EQ(back.iterations, 8191u);
}

TEST(Descriptor, RoundTripEventCtl)
{
    Descriptor d;
    d.type = DescType::EventCtl;
    d.eventOp = EventOp::WaitClear;
    d.eventMask = 0xdeadbeef;

    Descriptor back = decode(encode(d));
    EXPECT_EQ(back.eventOp, EventOp::WaitClear);
    EXPECT_EQ(back.eventMask, 0xdeadbeefu);
}

TEST(Descriptor, RoundTripHashProg)
{
    Descriptor d;
    d.type = DescType::HashProg;
    d.hashUseCrc = false;
    d.radixBits = 7;
    d.radixShift = 12;

    Descriptor back = decode(encode(d));
    EXPECT_FALSE(back.hashUseCrc);
    EXPECT_EQ(back.radixBits, 7);
    EXPECT_EQ(back.radixShift, 12);
}

/** Property: random DDR<->DMEM descriptors survive the wire. */
class DescRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(DescRoundTrip, RandomizedRoundTrip)
{
    dpu::sim::Rng rng{std::uint64_t(GetParam()) * 77 + 1};
    const std::uint8_t widths[] = {1, 2, 4, 8};
    for (int i = 0; i < 200; ++i) {
        Descriptor d;
        d.type = (i & 1) ? DescType::DdrToDmem : DescType::DmemToDdr;
        d.notifyEvent =
            rng.below(3) == 0 ? -1 : std::int8_t(rng.below(32));
        d.waitEvent =
            rng.below(3) == 0 ? -1 : std::int8_t(rng.below(32));
        d.linkAddr = std::uint16_t(rng.below(1 << 16));
        d.colWidth = widths[rng.below(4)];
        d.rows = std::uint32_t(rng.below(1 << 16));
        d.dmemAddr = std::uint16_t(rng.below(1 << 16));
        d.srcAddrInc = rng.below(2);
        d.dstAddrInc = rng.below(2);
        if (rng.below(2)) {
            d.gatherSrc = d.type == DescType::DdrToDmem;
            d.scatterDst = d.type == DescType::DmemToDdr;
            d.rle = rng.below(2);
            d.ibank = std::uint8_t(rng.below(4));
            d.ddrAddr = (rng.next() & ((1ull << 36) - 1)) & ~3ull;
        } else {
            d.ddrAddr = rng.next() & ((1ull << 36) - 1);
        }

        Descriptor back = decode(encode(d));
        EXPECT_EQ(back, d) << "iteration " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DescRoundTrip, ::testing::Range(0, 6));

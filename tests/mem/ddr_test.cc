/**
 * @file
 * DDR channel model tests: functional storage, streaming bandwidth
 * near the channel peak, random-access degradation, and bank-level
 * row behaviour — the properties the whole DPU design point rests on
 * (Section 2: "compute at memory bandwidth").
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mem/main_memory.hh"

using namespace dpu;
using mem::MainMemory;

namespace {

double
streamBandwidthGBs(MainMemory &mm, std::size_t total, bool write)
{
    // Keep a controller-depth window of transactions outstanding so
    // CAS and activate latencies pipeline instead of gating every
    // 256 B round trip (the DMAC read engine prefetches within a
    // descriptor the same way).
    constexpr std::size_t depth = 16;
    std::vector<std::uint8_t> buf(256);
    sim::Tick inflight[depth] = {};
    sim::Tick done = 0;
    std::size_t i = 0;
    for (std::size_t a = 0; a < total; a += 256, ++i) {
        sim::Tick earliest = inflight[i % depth];
        done = write ? mm.dmsWrite(a, buf.data(), 256, earliest)
                     : mm.dmsRead(a, buf.data(), 256, earliest);
        inflight[i % depth] = done;
    }
    return double(total) / (double(done) * 1e-12) / 1e9;
}

} // namespace

TEST(Ddr, FunctionalReadWrite)
{
    MainMemory mm(mem::ddr3_1600, 1 << 20);
    std::uint32_t v = 0xabad1dea;
    mm.store().store<std::uint32_t>(0x1234, v);
    EXPECT_EQ(mm.store().load<std::uint32_t>(0x1234), v);

    const char msg[] = "data movement system";
    mm.store().write(0x8000, msg, sizeof(msg));
    char out[sizeof(msg)];
    mm.store().read(0x8000, out, sizeof(msg));
    EXPECT_STREQ(out, msg);
}

TEST(Ddr, StreamingReadNearPeak)
{
    MainMemory mm(mem::ddr3_1600, 64 << 20);
    double gbs = streamBandwidthGBs(mm, 32 << 20, false);
    // DDR3-1600 peak is 12.8 GB/s; the paper's practical channel
    // limit is ~10 GB/s, which the model reproduces.
    EXPECT_GT(gbs, 9.3);
    EXPECT_LT(gbs, 10.8);
}

TEST(Ddr, StreamingWriteNearPeak)
{
    MainMemory mm(mem::ddr3_1600, 64 << 20);
    double gbs = streamBandwidthGBs(mm, 32 << 20, true);
    EXPECT_GT(gbs, 9.3);
    EXPECT_LT(gbs, 10.8);
}

TEST(Ddr, RandomAccessIsMuchSlower)
{
    MainMemory mm(mem::ddr3_1600, 64 << 20);
    // 64 B random reads with a stride that breaks row locality.
    std::uint8_t buf[64];
    sim::Tick done = 0;
    const int n = 4096;
    std::uint64_t addr = 0;
    for (int i = 0; i < n; ++i) {
        addr = (addr + 1234567) % ((64 << 20) - 64);
        addr &= ~63ull;
        done = mm.dmsRead(addr, buf, 64, done);
    }
    double gbs = double(n) * 64 / (double(done) * 1e-12) / 1e9;
    EXPECT_LT(gbs, 5.0); // row misses dominate
    EXPECT_GT(mm.statGroup().get("rowMisses"),
              mm.statGroup().get("rowHits"));
}

TEST(Ddr, SequentialStreamIsMostlyRowHits)
{
    MainMemory mm(mem::ddr3_1600, 8 << 20);
    streamBandwidthGBs(mm, 4 << 20, false);
    EXPECT_GT(mm.statGroup().get("rowHits"),
              20 * mm.statGroup().get("rowMisses"));
}

TEST(Ddr, Ddr4VariantIsFaster)
{
    MainMemory a(mem::ddr3_1600, 16 << 20);
    MainMemory b(mem::ddr4_3200x3, 16 << 20);
    double ga = streamBandwidthGBs(a, 8 << 20, false);
    double gb = streamBandwidthGBs(b, 8 << 20, false);
    // The 16 nm DPU's memory system provides 76 GB/s vs ~12.8
    // (Section 2.5) — roughly 6x.
    EXPECT_GT(gb / ga, 4.5);
    EXPECT_GT(gb, 60.0);
}

TEST(Ddr, CompletionTimesAreMonotonic)
{
    MainMemory mm(mem::ddr3_1600, 1 << 20);
    std::uint8_t buf[64];
    sim::Tick prev = 0;
    for (int i = 0; i < 100; ++i) {
        sim::Tick done = mm.dmsRead(std::uint64_t(i) * 64, buf, 64,
                                    prev);
        EXPECT_GT(done, prev);
        prev = done;
    }
}

TEST(Ddr, BytesCounted)
{
    MainMemory mm(mem::ddr3_1600, 1 << 20);
    std::uint8_t buf[256];
    mm.dmsRead(0, buf, 256, 0);
    mm.dmsWrite(0, buf, 128, 0);
    EXPECT_EQ(mm.statGroup().get("bytesRead"), 256u);
    EXPECT_EQ(mm.statGroup().get("bytesWritten"), 128u);
}

/**
 * @file
 * Cache tests, centred on the DPU's defining property: NO hardware
 * coherence (Section 2.3). Two caches over the same memory genuinely
 * serve stale data until software flushes/invalidates — we pin that
 * behaviour down, along with write-back, LRU eviction, and the
 * flush/invalidate instructions' semantics.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "mem/cache.hh"
#include "mem/main_memory.hh"

using namespace dpu;
using mem::Cache;
using mem::CacheParams;
using mem::MainMemory;

namespace {

const CacheParams l1Params{16 * 1024, 4, 1};
const CacheParams l2Params{256 * 1024, 8, 6};

struct TwoCoreFixture : ::testing::Test
{
    TwoCoreFixture()
        : mm(mem::ddr3_1600, 1 << 20), l2("l2", l2Params, mm),
          a("a.l1d", l1Params, l2), b("b.l1d", l1Params, l2)
    {
    }

    MainMemory mm;
    Cache l2;
    Cache a, b;
};

} // namespace

TEST_F(TwoCoreFixture, ReadMissFillsFromMemory)
{
    mm.store().store<std::uint64_t>(0x100, 0x1122334455667788ull);
    std::uint64_t v = 0;
    a.read(0x100, &v, 8, 0);
    EXPECT_EQ(v, 0x1122334455667788ull);
    EXPECT_TRUE(a.contains(0x100));
    EXPECT_EQ(a.statGroup().get("misses"), 1u);
}

TEST_F(TwoCoreFixture, WriteBackIsDeferred)
{
    std::uint64_t v = 42;
    a.write(0x200, &v, 8, 0);
    // The store is dirty in L1; memory still has the old value.
    EXPECT_TRUE(a.isDirty(0x200));
    EXPECT_EQ(mm.store().load<std::uint64_t>(0x200), 0u);
    a.flushRange(0x200, 8, 0);
    EXPECT_FALSE(a.isDirty(0x200));
    // Flush pushed it to L2 — still not memory.
    EXPECT_TRUE(l2.isDirty(0x200));
    EXPECT_EQ(mm.store().load<std::uint64_t>(0x200), 0u);
    l2.flushRange(0x200, 8, 0);
    EXPECT_EQ(mm.store().load<std::uint64_t>(0x200), 42u);
}

TEST_F(TwoCoreFixture, NonCoherentCachesServeStaleData)
{
    mm.store().store<std::uint32_t>(0x300, 1);
    std::uint32_t v = 0;
    b.read(0x300, &v, 4, 0); // b now caches value 1
    EXPECT_EQ(v, 1u);

    // Core a updates the location and flushes all the way to DDR.
    std::uint32_t nv = 2;
    a.write(0x300, &nv, 4, 0);
    a.flushRange(0x300, 4, 0);
    l2.flushRange(0x300, 4, 0);
    EXPECT_EQ(mm.store().load<std::uint32_t>(0x300), 2u);

    // Without an invalidate, b still sees the stale 1 — exactly the
    // bug class the paper's debugging tools hunt (Section 4).
    b.read(0x300, &v, 4, 0);
    EXPECT_EQ(v, 1u);

    // After invalidating, b re-fetches... from L2. But L2 was also
    // updated by a's flush, so now it sees 2.
    b.invalidateRange(0x300, 4, 0);
    b.read(0x300, &v, 4, 0);
    EXPECT_EQ(v, 2u);
}

TEST_F(TwoCoreFixture, InvalidateDropsDirtyData)
{
    std::uint64_t v = 7;
    a.write(0x400, &v, 8, 0);
    a.invalidateRange(0x400, 8, 0);
    // The dirty line was discarded without writeback.
    std::uint64_t out = 0;
    a.read(0x400, &out, 8, 0);
    EXPECT_EQ(out, 0u);
}

TEST_F(TwoCoreFixture, LruEvictsOldestAndWritesBack)
{
    // Fill one set (4 ways) plus one more conflicting line. Lines
    // mapping to set 0 of the 16 KB/4-way cache repeat every
    // 4 KB * ... : sets = 16384/(64*4) = 64, so stride = 64*64 = 4 KB.
    const std::uint64_t stride = 4096;
    std::uint64_t v = 0xdd;
    for (int i = 0; i < 5; ++i)
        a.write(stride * std::uint64_t(i), &v, 8, 0);
    // First line evicted; its dirty data must have landed in L2.
    EXPECT_FALSE(a.contains(0));
    EXPECT_TRUE(l2.contains(0));
    EXPECT_EQ(a.statGroup().get("writebacks"), 1u);
}

TEST_F(TwoCoreFixture, MissLatencyExceedsHitLatency)
{
    std::uint64_t v;
    sim::Tick t_miss = a.read(0x500, &v, 8, 0);
    sim::Tick t_hit = a.read(0x500, &v, 8, t_miss) - t_miss;
    EXPECT_GT(t_miss, t_hit * 10);
}

TEST_F(TwoCoreFixture, SharedL2VisibleToSiblingAfterL1Flush)
{
    // a writes and flushes its L1 only; b misses its L1 and hits the
    // shared L2, seeing the new value without DDR traffic. This is
    // the intra-macro sharing path.
    std::uint32_t nv = 99;
    a.write(0x600, &nv, 4, 0);
    a.flushRange(0x600, 4, 0);
    std::uint32_t v = 0;
    std::uint64_t ddr_reads = mm.statGroup().get("bytesRead");
    b.read(0x600, &v, 4, 0);
    EXPECT_EQ(v, 99u);
    EXPECT_EQ(mm.statGroup().get("bytesRead"), ddr_reads);
}

TEST_F(TwoCoreFixture, MultiLineReadCrossesBoundary)
{
    for (std::uint32_t i = 0; i < 32; ++i)
        mm.store().store<std::uint32_t>(0x700 + i * 4, i);
    std::uint32_t out[32];
    a.read(0x700, out, sizeof(out), 0);
    for (std::uint32_t i = 0; i < 32; ++i)
        EXPECT_EQ(out[i], i);
}

TEST_F(TwoCoreFixture, PartialWriteMergesWithMemoryContents)
{
    mm.store().store<std::uint64_t>(0x800, 0xaaaaaaaaaaaaaaaaull);
    std::uint8_t byte = 0xbb;
    a.write(0x801, &byte, 1, 0);
    std::uint64_t v;
    a.read(0x800, &v, 8, 0);
    EXPECT_EQ(v, 0xaaaaaaaaaaaabbaaull);
}

TEST_F(TwoCoreFixture, FlushAllCleansEverything)
{
    std::uint64_t v = 5;
    for (int i = 0; i < 100; ++i)
        a.write(std::uint64_t(i) * 64, &v, 8, 0);
    a.flushAll(0);
    l2.flushAll(0);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(mm.store().load<std::uint64_t>(std::uint64_t(i) * 64),
                  5u);
    EXPECT_FALSE(a.contains(0));
}

/**
 * @file
 * SummaryFold unit tests (host/summary.hh): the two accounting
 * bugs the shared fold fixed must stay fixed — availability is
 * submitted-weighted (an idle replica cannot dilute a hot shard's
 * outage) and a single-tick completion window reports its
 * throughput instead of zero — plus the nearest-rank percentile
 * helper and the basic count/latency folding laws.
 */

#include <gtest/gtest.h>

#include <vector>

#include "host/summary.hh"

using namespace dpu;
using host::JobRecord;
using host::JobState;
using host::ServingSummary;
using host::SummaryFold;

namespace {

ServingSummary
part(std::uint64_t submitted, double availability)
{
    ServingSummary s;
    s.submitted = submitted;
    s.accepted = submitted;
    s.availability = availability;
    return s;
}

JobRecord
completedJob(sim::Tick enq, sim::Tick fin)
{
    JobRecord r;
    r.state = JobState::Completed;
    r.enqueuedAt = enq;
    r.finishedAt = fin;
    return r;
}

} // namespace

TEST(Percentile, NearestRankOverASortedSample)
{
    const std::vector<double> s = {1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(host::percentileOf(s, 0.50), 2.0);
    EXPECT_DOUBLE_EQ(host::percentileOf(s, 0.99), 4.0);
    EXPECT_DOUBLE_EQ(host::percentileOf(s, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(host::percentileOf({}, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(host::percentileOf({7.0}, 0.99), 7.0);
}

TEST(SummaryFold, AvailabilityIsWeightedBySubmittedTraffic)
{
    // A hot shard that served 90% of the traffic at availability
    // 0.5 next to an idle-but-healthy replica: the unweighted mean
    // would read 0.75, flattering the outage 1:1 with a shard that
    // served almost nothing.
    SummaryFold fold;
    fold.add(part(90, 0.5), {});
    fold.add(part(10, 1.0), {});
    const ServingSummary out = fold.finish();
    EXPECT_EQ(out.submitted, 100u);
    EXPECT_DOUBLE_EQ(out.availability, 0.55);
}

TEST(SummaryFold, IdleShardsCannotVoteAtAll)
{
    SummaryFold fold;
    fold.add(part(50, 0.2), {});
    fold.add(part(0, 1.0), {}); // idle: no vote
    EXPECT_DOUBLE_EQ(fold.finish().availability, 0.2);
}

TEST(SummaryFold, AllIdleFallsBackToThePlainMean)
{
    // Zero traffic anywhere: weighted division would be 0/0, so
    // the fold reads the shards' own idea of health unweighted.
    SummaryFold fold;
    fold.add(part(0, 0.25), {});
    fold.add(part(0, 0.75), {});
    EXPECT_DOUBLE_EQ(fold.finish().availability, 0.5);
}

TEST(SummaryFold, SingleTickCompletionWindowReportsThroughput)
{
    // Every completion on one tick used to trip the last > first
    // guard and report zero throughput; the window now clamps to
    // one tick (1 ps), so the rate is huge but finite and nonzero.
    SummaryFold fold;
    ServingSummary s = part(2, 1.0);
    s.completed = 2;
    fold.add(s, {completedJob(5000, 5000),
                 completedJob(5000, 5000)});
    const ServingSummary out = fold.finish();
    EXPECT_EQ(fold.firstEnqueue(), sim::Tick(5000));
    EXPECT_EQ(fold.lastFinish(), sim::Tick(5000));
    EXPECT_DOUBLE_EQ(out.throughputJobsPerSec, 2.0 / 1e-12);
}

TEST(SummaryFold, CountsSumAndLatenciesFoldAcrossParts)
{
    SummaryFold fold;
    ServingSummary a = part(3, 1.0);
    a.completed = 2;
    a.timedOut = 1;
    ServingSummary b = part(1, 1.0);
    b.completed = 1;
    // Latencies 1 us, 3 us from shard a; 2 us from shard b.
    fold.add(a, {completedJob(0, 1'000'000),
                 completedJob(0, 3'000'000)});
    fold.add(b, {completedJob(1'000'000, 3'000'000)});
    const ServingSummary out = fold.finish();
    EXPECT_EQ(out.submitted, 4u);
    EXPECT_EQ(out.completed, 3u);
    EXPECT_EQ(out.timedOut, 1u);
    EXPECT_DOUBLE_EQ(out.meanUs, 2.0);
    EXPECT_DOUBLE_EQ(out.maxUs, 3.0);
    EXPECT_DOUBLE_EQ(out.p50Us, 2.0);
    // Window spans the earliest enqueue to the latest finish
    // across shards: 3 completions over 3 us.
    EXPECT_DOUBLE_EQ(out.throughputJobsPerSec, 3.0 / 3e-6);
}

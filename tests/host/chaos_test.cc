/**
 * @file
 * Seeded chaos harness: drive the offload scheduler through many
 * randomized-but-deterministic fault schedules and hold the
 * robustness contract on every one:
 *
 *  - the simulation never hangs (bounded run, host driver exits);
 *  - every request resolves: completed, timed out, or rejected —
 *    nothing left queued or running;
 *  - every timed-out request carries a failure attribution;
 *  - the same seed replays to bit-identical statistics.
 *
 * The fault schedules come from FaultPlane::randomSpec(seed), so a
 * failing seed reproduces from its number alone. The workload mixes
 * plain compute lanes, DMS streaming lanes that use the bounded
 * wfeFor() recovery path, and ATE lanes behind ReliableAte retries.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "board/board.hh"
#include "host/board_offload.hh"
#include "host/offload.hh"
#include "rt/dms_ctl.hh"
#include "rt/sync.hh"
#include "sim/fault.hh"
#include "sim/rng.hh"
#include "sim/stats_registry.hh"
#include "soc/host_a9.hh"
#include "soc/soc.hh"

using namespace dpu;
using namespace dpu::host;

namespace {

constexpr unsigned chaosSeeds = 24;
constexpr unsigned chaosJobs = 18;

/** A request of one of three lane flavours. */
JobRequest
chaosJob(unsigned kind, std::uint64_t seed)
{
    JobRequest req;
    req.seed = seed;
    req.makeJob = [kind](const apps::ServingContext &ctx) {
        apps::ServingJob job;
        job.stage = [] {};
        switch (kind % 3) {
        case 0: // plain compute
            job.lane = [](core::DpCore &c, unsigned) { c.alu(512); };
            break;
        case 1: // DMS streaming with the bounded-wait recovery path
            job.lane = [ctx](core::DpCore &c, unsigned lane) {
                rt::DmsCtl ctl(c, ctx.soc->dmsFor(c.id()));
                for (int i = 0; i < 2; ++i) {
                    ctl.ddrToDmem()
                        .rows(256)
                        .width(4)
                        .from(ctx.arena + lane * 4096)
                        .to(0)
                        .event(0)
                        .push(0);
                    auto res = ctl.wfeFor(0, sim::Tick(1e9));
                    if (res != dms::Dms::WfeResult::Ok)
                        break; // error or wedge: fail clean, ack
                    ctl.clearEvent(0);
                }
            };
            break;
        default: // remote atomics behind bounded retries
            job.lane = [ctx](core::DpCore &c, unsigned lane) {
                rt::AteRetryPolicy pol;
                pol.timeout = sim::Tick(1e9);
                pol.maxRetries = 3;
                rt::ReliableAte ra(ctx.soc->ate(), pol);
                const unsigned peer =
                    ctx.baseCore + ((lane + 1) % ctx.nLanes);
                for (int i = 0; i < 4; ++i)
                    (void)ra.fetchAdd(c, peer,
                                      mem::dmemAddr(peer, 256), 1);
            };
            break;
        }
        return job;
    };
    return req;
}

struct ChaosOutcome
{
    sim::StatsSnapshot snap;
    ServingSummary sum;
    bool hostFinished = false;
    std::vector<JobState> states;
    std::vector<std::string> causes;
};

/** One full chaos run under randomSpec(seed). */
ChaosOutcome
runChaos(std::uint64_t seed)
{
    sim::faultPlane().reset();
    sim::faultPlane().configure(sim::FaultPlane::randomSpec(seed),
                                seed);

    ChaosOutcome out;
    {
        soc::Soc s;
        soc::HostA9 a9(s.eventQueue(), s.mbc());
        OffloadParams p;
        p.nCores = 16;
        p.groupSize = 4;
        p.maxAttempts = 2;
        p.defaultTimeout = sim::Tick(2e9); // 2 ms
        OffloadScheduler sched(s, a9, p);

        sim::Rng rng(seed ^ 0xc0ffee);
        sim::Tick t = 0;
        for (unsigned i = 0; i < chaosJobs; ++i) {
            t += 50'000'000 + rng.below(200'000'000);
            sched.enqueueAt(t, chaosJob(unsigned(rng.below(3)),
                                        seed + i));
        }

        sched.start();
        s.runFor(sim::Tick(1e12)); // 1 s cap: a hang fails loudly

        out.hostFinished = a9.finished();
        out.sum = sched.summary();
        for (const JobRecord &rec : sched.jobs()) {
            out.states.push_back(rec.state);
            out.causes.push_back(rec.cause);
        }
        out.snap = sim::StatsRegistry::instance().snapshot();
        out.snap.counters["sim.finalTick"] = s.now();
    }
    sim::faultPlane().reset();
    return out;
}

} // namespace

TEST(Chaos, EverySeedResolvesCleanlyAndReplaysBitIdentically)
{
    for (std::uint64_t seed = 1; seed <= chaosSeeds; ++seed) {
        const std::string spec = sim::FaultPlane::randomSpec(seed);
        SCOPED_TRACE("seed " + std::to_string(seed) + " spec " +
                     spec);

        const ChaosOutcome a = runChaos(seed);

        // No hang: the driver loop exited under the fault schedule.
        ASSERT_TRUE(a.hostFinished);

        // Full accounting: every request resolved one way exactly.
        EXPECT_EQ(a.sum.completed + a.sum.timedOut + a.sum.rejected,
                  a.sum.submitted);
        EXPECT_EQ(a.sum.submitted, std::uint64_t(chaosJobs));
        for (std::size_t i = 0; i < a.states.size(); ++i) {
            EXPECT_NE(a.states[i], JobState::Queued) << "job " << i;
            EXPECT_NE(a.states[i], JobState::Running) << "job " << i;
            if (a.states[i] == JobState::TimedOut)
                EXPECT_FALSE(a.causes[i].empty())
                    << "job " << i << " timed out unattributed";
        }
        EXPECT_GE(a.sum.availability, 0.0);
        EXPECT_LE(a.sum.availability, 1.0);

        // Determinism: the same seed replays to the same stats.
        const ChaosOutcome b = runChaos(seed);
        EXPECT_EQ(a.snap, b.snap)
            << sim::formatDiffs(sim::diffSnapshots(a.snap, b.snap));
        EXPECT_EQ(a.states, b.states);
    }
}

TEST(Chaos, CleanRunUnderChaosHarnessShape)
{
    // The same workload with the plane inert: everything completes.
    sim::faultPlane().reset();
    soc::Soc s;
    soc::HostA9 a9(s.eventQueue(), s.mbc());
    OffloadParams p;
    p.nCores = 16;
    p.groupSize = 4;
    OffloadScheduler sched(s, a9, p);

    sim::Rng rng(99);
    sim::Tick t = 0;
    for (unsigned i = 0; i < chaosJobs; ++i) {
        t += 50'000'000 + rng.below(200'000'000);
        sched.enqueueAt(t, chaosJob(i, 1000 + i));
    }
    sched.start();
    s.runFor(sim::Tick(1e12));

    EXPECT_TRUE(a9.finished());
    EXPECT_EQ(sched.summary().completed,
              std::uint64_t(chaosJobs));
    EXPECT_EQ(sched.summary().timedOut, 0u);
    EXPECT_TRUE(s.allFinished());
}

// ----------------------------------------------------------------
// Parallel-mode slice: chaos schedules on a multi-DPU board
// ----------------------------------------------------------------

namespace {

/** One chaos schedule on a 2-DPU board at a given thread count. */
ChaosOutcome
runBoardChaos(std::uint64_t seed, unsigned threads)
{
    sim::faultPlane().reset();
    sim::faultPlane().configure(sim::FaultPlane::randomSpec(seed),
                                seed);

    ChaosOutcome out;
    {
        board::BoardParams bp;
        bp.nDpus = 2;
        bp.threads = threads;
        board::Board b(bp);
        OffloadParams p;
        p.nCores = 16;
        p.groupSize = 4;
        p.maxAttempts = 2;
        p.defaultTimeout = sim::Tick(2e9);
        BoardScheduler sched(b, p, ShardRouting::RoundRobin);

        sim::Rng rng(seed ^ 0xc0ffee);
        sim::Tick t = 0;
        for (unsigned i = 0; i < chaosJobs; ++i) {
            t += 50'000'000 + rng.below(200'000'000);
            sched.enqueueAt(t, chaosJob(unsigned(rng.below(3)),
                                        seed + i));
        }

        sched.start();
        b.runFor(sim::Tick(1e12));

        out.hostFinished = true;
        for (unsigned d = 0; d < b.nDpus(); ++d)
            out.hostFinished &= b.host(d).finished();
        out.sum = sched.summary();
        for (unsigned d = 0; d < sched.nShards(); ++d)
            for (const JobRecord &rec : sched.shard(d).jobs()) {
                out.states.push_back(rec.state);
                out.causes.push_back(rec.cause);
            }
        out.snap = sim::StatsRegistry::instance().snapshot();
        out.snap.counters["sim.finalTick"] = b.now();
    }
    sim::faultPlane().reset();
    return out;
}

} // namespace

TEST(Chaos, BoardSchedulesReplayIdenticallyAcrossThreadCounts)
{
    // A slice of the seed space (the full sweep lives in the
    // single-chip wall above): each schedule must resolve cleanly
    // on a 2-DPU board and replay bit-identically with the epoch
    // runner on one and on two worker threads.
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const std::string spec = sim::FaultPlane::randomSpec(seed);
        SCOPED_TRACE("seed " + std::to_string(seed) + " spec " +
                     spec);

        const ChaosOutcome serial = runBoardChaos(seed, 1);
        ASSERT_TRUE(serial.hostFinished);
        EXPECT_EQ(serial.sum.completed + serial.sum.timedOut +
                      serial.sum.rejected,
                  serial.sum.submitted);
        EXPECT_EQ(serial.sum.submitted, std::uint64_t(chaosJobs));
        for (std::size_t i = 0; i < serial.states.size(); ++i) {
            EXPECT_NE(serial.states[i], JobState::Queued)
                << "job " << i;
            EXPECT_NE(serial.states[i], JobState::Running)
                << "job " << i;
        }

        const ChaosOutcome par = runBoardChaos(seed, 2);
        EXPECT_EQ(serial.snap, par.snap)
            << "threads=2 diverged:\n"
            << sim::formatDiffs(
                   sim::diffSnapshots(serial.snap, par.snap));
        EXPECT_EQ(serial.states, par.states);
        EXPECT_EQ(serial.causes, par.causes);
    }
}

/**
 * @file
 * Routing-law property tests for the pluggable Router policies
 * (host/router.hh). These are the invariants the board and rack
 * schedulers lean on: hash purity and spread, replica-group
 * membership as a pure function of the key, exact round-robin
 * fairness, weighted share proportionality, and the legacy
 * ShardRouting enum staying a faithful factory.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "host/router.hh"
#include "sim/rng.hh"

using namespace dpu;
using host::RouteInfo;
using host::Router;

namespace {

RouteInfo
keyedReq(std::uint64_t key)
{
    RouteInfo r;
    r.app = "serve";
    r.key = key;
    r.hasKey = true;
    return r;
}

RouteInfo
seededReq(std::uint64_t seed)
{
    RouteInfo r;
    r.app = "serve";
    r.seed = seed;
    return r;
}

} // namespace

// ----------------------------------------------------------------
// Hash policy
// ----------------------------------------------------------------

TEST(HashRouter, IsAPureFunctionOfTheRequest)
{
    auto a = host::makeHashRouter();
    auto b = host::makeHashRouter();
    for (std::uint64_t k = 0; k < 512; ++k) {
        const unsigned s = a->route(keyedReq(k), 7);
        ASSERT_LT(s, 7u);
        // Same request, same instance, interleaved with other
        // requests: still the same shard (no hidden state).
        EXPECT_EQ(a->route(keyedReq(k), 7), s);
        // And a fresh instance agrees: the policy has no per-
        // instance identity.
        EXPECT_EQ(b->route(keyedReq(k), 7), s);
    }
}

TEST(HashRouter, SpreadsKeysAcrossAllShards)
{
    auto r = host::makeHashRouter();
    std::map<unsigned, unsigned> hist;
    const unsigned n = 8, keys = 4096;
    for (std::uint64_t k = 0; k < keys; ++k)
        ++hist[r->route(keyedReq(k), n)];
    ASSERT_EQ(hist.size(), n);
    for (const auto &[shard, cnt] : hist) {
        // Crude balance bound: every shard within 2x of fair share.
        EXPECT_GT(cnt, keys / n / 2) << "shard " << shard;
        EXPECT_LT(cnt, keys / n * 2) << "shard " << shard;
    }
}

TEST(HashRouter, AppNameAndSeedBothFeedTheMix)
{
    auto r = host::makeHashRouter();
    RouteInfo a = seededReq(99);
    RouteInfo b = seededReq(99);
    b.app = "other-app";
    // Not a universal law for any single pair, so probe many seeds:
    // the two apps must disagree somewhere.
    bool differ = false;
    for (std::uint64_t s = 0; s < 64 && !differ; ++s) {
        a.seed = b.seed = s;
        differ = r->route(a, 16) != r->route(b, 16);
    }
    EXPECT_TRUE(differ);
}

// ----------------------------------------------------------------
// Round-robin policy
// ----------------------------------------------------------------

TEST(RoundRobinRouter, ExactFairnessInArrivalOrder)
{
    auto r = host::makeRoundRobinRouter();
    const unsigned n = 5, laps = 40;
    std::vector<unsigned> cnt(n, 0);
    for (unsigned i = 0; i < n * laps; ++i) {
        const unsigned s = r->route(seededReq(i * 7919), n);
        EXPECT_EQ(s, i % n) << "arrival " << i;
        ++cnt[s];
    }
    for (unsigned s = 0; s < n; ++s)
        EXPECT_EQ(cnt[s], laps) << "shard " << s;
}

TEST(RoundRobinRouter, CandidatesAdvanceTheCursorExactlyOnce)
{
    auto r = host::makeRoundRobinRouter();
    std::vector<unsigned> c;
    r->candidates(seededReq(1), 4, c);
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(c[0], 0u);
    // The next arrival continues the stripe where candidates()
    // left off — one cursor step per request, not per candidate.
    EXPECT_EQ(r->route(seededReq(2), 4), 1u);
}

// ----------------------------------------------------------------
// Weighted policy
// ----------------------------------------------------------------

TEST(WeightedRouter, SharesTrackTheWeights)
{
    auto r = host::makeWeightedRouter({3.0, 1.0});
    unsigned heavy = 0, light = 0;
    const unsigned keys = 8192;
    for (std::uint64_t k = 0; k < keys; ++k)
        (r->route(keyedReq(k), 2) == 0 ? heavy : light)++;
    EXPECT_EQ(heavy + light, keys);
    const double share = double(heavy) / keys;
    EXPECT_NEAR(share, 0.75, 0.03);
}

TEST(WeightedRouter, UnlistedShardsWeighOne)
{
    // weights {2} over 3 shards = shares 2:1:1.
    auto r = host::makeWeightedRouter({2.0});
    std::map<unsigned, unsigned> hist;
    const unsigned keys = 8192;
    for (std::uint64_t k = 0; k < keys; ++k)
        ++hist[r->route(keyedReq(k), 3)];
    ASSERT_EQ(hist.size(), 3u);
    EXPECT_NEAR(double(hist[0]) / keys, 0.50, 0.03);
    EXPECT_NEAR(double(hist[1]) / keys, 0.25, 0.03);
    EXPECT_NEAR(double(hist[2]) / keys, 0.25, 0.03);
}

TEST(WeightedRouter, IsAPureFunctionOfTheRequest)
{
    auto a = host::makeWeightedRouter({1.0, 2.0, 4.0});
    auto b = host::makeWeightedRouter({1.0, 2.0, 4.0});
    for (std::uint64_t k = 0; k < 256; ++k)
        EXPECT_EQ(a->route(keyedReq(k), 3),
                  b->route(keyedReq(k), 3));
}

// ----------------------------------------------------------------
// Replica-group policy (the rack placement law)
// ----------------------------------------------------------------

TEST(ReplicaGroupRouter, MembershipIsAPureFunctionOfTheKey)
{
    // The group a key lands in depends only on (key, nShards) —
    // replication only widens the candidate list. This is what
    // lets a rack raise replication without migrating data.
    auto r1 = host::makeReplicaGroupRouter(1);
    auto r2 = host::makeReplicaGroupRouter(2);
    auto r3 = host::makeReplicaGroupRouter(3);
    const unsigned n = 8;
    for (std::uint64_t k = 0; k < 512; ++k) {
        const RouteInfo req = keyedReq(k);
        const unsigned primary = r1->route(req, n);
        EXPECT_EQ(r2->route(req, n), primary);
        EXPECT_EQ(r3->route(req, n), primary);

        std::vector<unsigned> c1, c2, c3;
        r1->candidates(req, n, c1);
        r2->candidates(req, n, c2);
        r3->candidates(req, n, c3);
        ASSERT_EQ(c1.size(), 1u);
        ASSERT_EQ(c2.size(), 2u);
        ASSERT_EQ(c3.size(), 3u);
        // Wider replication extends, never reorders: c2 and c3
        // share c1 as a prefix.
        EXPECT_EQ(c2[0], c1[0]);
        EXPECT_EQ(c3[0], c1[0]);
        EXPECT_EQ(c3[1], c2[1]);
        // Candidates are distinct shards.
        std::set<unsigned> uniq(c3.begin(), c3.end());
        EXPECT_EQ(uniq.size(), c3.size()) << "key " << k;
    }
}

TEST(ReplicaGroupRouter, GroupsWrapAndClampToTheShardCount)
{
    auto r = host::makeReplicaGroupRouter(4);
    // replication 4 over 2 shards: candidate list clamps to 2.
    std::vector<unsigned> c;
    r->candidates(keyedReq(3), 2, c);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_NE(c[0], c[1]);
    // And over 3 shards the group wraps modulo nShards.
    std::vector<unsigned> w;
    r->candidates(keyedReq(3), 3, w);
    ASSERT_EQ(w.size(), 3u);
    for (unsigned i = 1; i < w.size(); ++i)
        EXPECT_EQ(w[i], (w[0] + i) % 3);
}

TEST(WeightedRouter, SurplusWeightsAreATopologyMismatch)
{
    // Shorter-than-nShards pads with 1.0 (law above); LONGER means
    // the caller sized the vector for a different topology, which
    // must fail loudly instead of silently dropping the tail.
    auto r = host::makeWeightedRouter({1.0, 2.0, 4.0});
    EXPECT_EQ(r->route(keyedReq(1), 3), r->route(keyedReq(1), 3));
    EXPECT_DEATH(r->route(keyedReq(1), 2), "surplus");
}

// ----------------------------------------------------------------
// Partition-mapped replica policy (the rack balancer's map)
// ----------------------------------------------------------------

namespace {

/** The rack scheduler's routing slice: a bare partition index
 *  (empty app), exactly what PartitionRouter::defaultHomeOf
 *  rebuilds internally. */
RouteInfo
partReq(unsigned partition)
{
    RouteInfo r;
    r.key = partition;
    r.hasKey = true;
    return r;
}

} // namespace

TEST(PartitionRouter, DefaultMapMatchesReplicaGroupRouting)
{
    // A map with no reassignments must be bit-identical to the
    // replica-group policy over the same partition keys — this is
    // what keeps static racks on their golden snapshots.
    const unsigned parts = 64;
    auto pm = host::makePartitionRouter(parts, 2);
    auto rg = host::makeReplicaGroupRouter(2);
    for (unsigned n : {4u, 8u}) {
        for (unsigned p = 0; p < parts; ++p) {
            EXPECT_EQ(pm->route(partReq(p), n),
                      rg->route(partReq(p), n));
            EXPECT_EQ(pm->homeOf(p, n), pm->defaultHomeOf(p, n));
            std::vector<unsigned> a, b;
            pm->candidates(partReq(p), n, a);
            rg->candidates(partReq(p), n, b);
            EXPECT_EQ(a, b) << "partition " << p << ", " << n
                            << " shards";
        }
    }
    EXPECT_EQ(pm->reassignedCount(), 0u);
}

TEST(PartitionRouter, ReassignRehomesOnePartitionOnly)
{
    const unsigned parts = 16, n = 4;
    auto pm = host::makePartitionRouter(parts, 2);
    const unsigned victim = 5;
    const unsigned oldHome = pm->homeOf(victim, n);
    const unsigned newHome = (oldHome + 2) % n;
    pm->reassign(victim, newHome);

    EXPECT_TRUE(pm->reassigned(victim));
    EXPECT_EQ(pm->reassignedCount(), 1u);
    EXPECT_EQ(pm->homeOf(victim, n), newHome);
    EXPECT_EQ(pm->route(partReq(victim), n), newHome);
    // The hash home is remembered underneath the override.
    EXPECT_EQ(pm->defaultHomeOf(victim, n), oldHome);
    // Every other partition still routes by hash.
    for (unsigned p = 0; p < parts; ++p) {
        if (p == victim)
            continue;
        EXPECT_EQ(pm->homeOf(p, n), pm->defaultHomeOf(p, n));
        EXPECT_FALSE(pm->reassigned(p));
    }
    // Failover order after the move: the new home leads, and the
    // candidate list keeps its width and stays duplicate-free.
    std::vector<unsigned> c;
    pm->candidates(partReq(victim), n, c);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c[0], newHome);
    EXPECT_NE(c[1], c[0]);
}

// ----------------------------------------------------------------
// Legacy enum factory + shared hash
// ----------------------------------------------------------------

TEST(RouterFactory, EnumTokensBuildTheMatchingPolicies)
{
    auto hash = host::makeRouter(host::ShardRouting::Hash);
    auto rr = host::makeRouter(host::ShardRouting::RoundRobin);
    auto refHash = host::makeHashRouter();
    for (std::uint64_t s = 0; s < 128; ++s)
        EXPECT_EQ(hash->route(seededReq(s), 4),
                  refHash->route(seededReq(s), 4));
    for (unsigned i = 0; i < 12; ++i)
        EXPECT_EQ(rr->route(seededReq(i), 4), i % 4);
}

TEST(RouterHash, KeyAndSeedPathsAreBothStable)
{
    // routeHash is the one placement mix every key policy shares:
    // pin a few values so an accidental reformulation (which would
    // silently migrate every key in every golden) shows up here
    // first, not in a golden diff three layers up.
    const std::uint32_t hk = host::routeHash(keyedReq(0xdeadbeef));
    const std::uint32_t hs =
        host::routeHash(seededReq(0xdeadbeef));
    // An explicit key must hash exactly like the legacy seed mix.
    EXPECT_EQ(hk, hs);
    EXPECT_EQ(host::routeHash(keyedReq(0xdeadbeef)), hk);
    EXPECT_NE(host::routeHash(keyedReq(0xdeadbef0)), hk);
}

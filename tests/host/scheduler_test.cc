/**
 * @file
 * Offload-scheduler tests: admission control under a bounded queue,
 * deadline reaping of wedged and slow kernels (the simulator must
 * never hang on a fault), late-ack group reclamation, and the
 * closed-loop resubmission path. Fault injection uses the
 * JobRequest::makeJob hook to plant kernels the registry would
 * never produce.
 */

#include <gtest/gtest.h>

#include <memory>

#include "host/offload.hh"
#include "rt/dms_ctl.hh"
#include "sim/fault.hh"
#include "soc/soc.hh"

using namespace dpu;
using namespace dpu::host;

namespace {

/** A trivial job: every lane charges a few ALU ops and acks. */
JobRequest
quickJob()
{
    JobRequest req;
    req.makeJob = [](const apps::ServingContext &) {
        apps::ServingJob job;
        job.stage = [] {};
        job.lane = [](core::DpCore &c, unsigned) { c.alu(16); };
        return job;
    };
    return req;
}

/** A job whose lanes burn @p cycles before acking. */
JobRequest
slowJob(std::uint64_t cycles)
{
    JobRequest req;
    req.makeJob = [cycles](const apps::ServingContext &) {
        apps::ServingJob job;
        job.stage = [] {};
        job.lane = [cycles](core::DpCore &c, unsigned) {
            c.sleepCycles(cycles);
        };
        return job;
    };
    return req;
}

/** A job whose lane 0 wedges forever; other lanes ack normally. */
JobRequest
wedgedJob()
{
    JobRequest req;
    req.makeJob = [](const apps::ServingContext &) {
        apps::ServingJob job;
        job.stage = [] {};
        job.lane = [](core::DpCore &c, unsigned lane) {
            if (lane == 0)
                c.blockUntil([] { return false; });
            c.alu(16);
        };
        return job;
    };
    return req;
}

/** One-group chip (4 managed cores) for serialization tests. */
OffloadParams
oneGroup()
{
    OffloadParams p;
    p.nCores = 4;
    p.groupSize = 4;
    return p;
}

} // namespace

TEST(OffloadScheduler, MixedRegistryLoadCompletesAndValidates)
{
    soc::SocParams sp = soc::dpu40nm();
    sp.ddrBytes = 64 << 20;
    soc::Soc s(sp);
    soc::HostA9 a9(s.eventQueue(), s.mbc());
    OffloadScheduler sched(s, a9, {});

    const char *apps[] = {"filter", "groupby-low", "hll-crc",
                          "json",   "filter",      "groupby-low"};
    sim::Tick t = 0;
    unsigned i = 0;
    for (const char *app : apps) {
        JobRequest req;
        req.app = app;
        const apps::AppSpec *spec = apps::findApp(app);
        ASSERT_NE(spec, nullptr);
        apps::ConfigHandle cfg = spec->makeConfig();
        // Shrink every request to serving size.
        ASSERT_TRUE(spec->set(cfg, "seed", "11"));
        if (std::string(app) == "filter") {
            ASSERT_TRUE(spec->set(cfg, "rowsPerCore", "4096"));
        }
        if (std::string(app) == "groupby-low") {
            ASSERT_TRUE(spec->set(cfg, "nRows", "16384"));
            ASSERT_TRUE(spec->set(cfg, "ndv", "128"));
        }
        if (std::string(app) == "hll-crc") {
            ASSERT_TRUE(spec->set(cfg, "nElements", "8192"));
            ASSERT_TRUE(spec->set(cfg, "cardinality", "2048"));
            ASSERT_TRUE(spec->set(cfg, "pBits", "10"));
        }
        if (std::string(app) == "json") {
            ASSERT_TRUE(spec->set(cfg, "nRecords", "512"));
        }
        req.cfg = std::move(cfg);
        req.seed = 100 + i++;
        sched.enqueueAt(t += sim::Tick(50e6), std::move(req));
    }

    sched.start();
    s.run();

    const ServingSummary sum = sched.summary();
    EXPECT_EQ(sum.submitted, 6u);
    EXPECT_EQ(sum.completed, 6u);
    EXPECT_EQ(sum.timedOut, 0u);
    EXPECT_EQ(sum.rejected, 0u);
    EXPECT_EQ(sum.validationFailed, 0u);
    for (const JobRecord &rec : sched.jobs()) {
        EXPECT_EQ(rec.state, JobState::Completed);
        EXPECT_TRUE(rec.valid) << rec.app;
        EXPECT_GT(rec.latencyUs(), 0.0);
    }
    EXPECT_LE(sum.p50Us, sum.p95Us);
    EXPECT_LE(sum.p95Us, sum.p99Us);
    EXPECT_LE(sum.p99Us, sum.maxUs);
    EXPECT_GT(sum.throughputJobsPerSec, 0.0);
    EXPECT_TRUE(s.allFinished());
    EXPECT_TRUE(a9.finished());
}

TEST(OffloadScheduler, WedgedKernelIsReapedAndQueueKeepsDraining)
{
    soc::Soc s;
    soc::HostA9 a9(s.eventQueue(), s.mbc());
    OffloadParams p;
    p.nCores = 8; // two groups: the wedge costs one, not the chip
    p.groupSize = 4;
    OffloadScheduler sched(s, a9, p);

    // The wedge arrives first and grabs a group; everything behind
    // it must still drain through the surviving group.
    JobRequest wedge = wedgedJob();
    wedge.timeout = sim::Tick(1e9); // 1 ms
    sched.enqueueAt(0, std::move(wedge));
    for (unsigned i = 0; i < 4; ++i)
        sched.enqueueAt(1000 + i, quickJob());

    sched.start();
    s.run(); // must return: a wedged kernel never hangs the sim

    const ServingSummary sum = sched.summary();
    EXPECT_EQ(sum.submitted, 5u);
    EXPECT_EQ(sum.timedOut, 1u);
    EXPECT_EQ(sum.completed, 4u);
    EXPECT_EQ(sum.wedgedGroups, 1u);
    EXPECT_EQ(sched.jobs()[0].state, JobState::TimedOut);
    // The wedged lane is the one fiber left parked.
    EXPECT_EQ(s.unfinishedCores().size(), 1u);
    EXPECT_TRUE(a9.finished());
}

TEST(OffloadScheduler, QueuedJobPastDeadlineIsReapedUndispatched)
{
    soc::Soc s;
    soc::HostA9 a9(s.eventQueue(), s.mbc());
    OffloadScheduler sched(s, a9, oneGroup());

    // ~2.5 ms of kernel on the only group.
    sched.enqueueAt(0, slowJob(2'000'000));
    JobRequest doomed = quickJob();
    doomed.timeout = sim::Tick(1e9); // 1 ms — expires while queued
    sched.enqueueAt(1, std::move(doomed));
    sched.enqueueAt(2, quickJob()); // default deadline: survives

    sched.start();
    s.run();

    const ServingSummary sum = sched.summary();
    EXPECT_EQ(sum.completed, 2u);
    EXPECT_EQ(sum.timedOut, 1u);
    const JobRecord &doomed_rec = sched.jobs()[1];
    EXPECT_EQ(doomed_rec.state, JobState::TimedOut);
    EXPECT_EQ(doomed_rec.dispatchedAt, 0u)
        << "the doomed job must never have reached a group";
    EXPECT_EQ(sched.jobs()[2].state, JobState::Completed);
    EXPECT_TRUE(s.allFinished());
}

TEST(OffloadScheduler, BoundedQueueRejectsOverflow)
{
    soc::Soc s;
    soc::HostA9 a9(s.eventQueue(), s.mbc());
    OffloadParams p = oneGroup();
    p.queueDepth = 2;
    OffloadScheduler sched(s, a9, p);

    for (unsigned i = 0; i < 10; ++i)
        sched.enqueueAt(0, quickJob());

    sched.start();
    s.run();

    const ServingSummary sum = sched.summary();
    EXPECT_EQ(sum.submitted, 10u);
    EXPECT_EQ(sum.accepted, 2u);
    EXPECT_EQ(sum.rejected, 8u);
    EXPECT_EQ(sum.completed, 2u);
    unsigned rejected = 0;
    for (const JobRecord &rec : sched.jobs())
        rejected += rec.state == JobState::Rejected;
    EXPECT_EQ(rejected, 8u);
    EXPECT_TRUE(s.allFinished());
}

TEST(OffloadScheduler, LateAckReclaimsQuarantinedGroup)
{
    soc::Soc s;
    soc::HostA9 a9(s.eventQueue(), s.mbc());
    OffloadScheduler sched(s, a9, oneGroup());

    // Finite but slower than its deadline: reaped at 1 ms, acks at
    // ~2.5 ms, and the group must then serve the follow-up job.
    JobRequest slow = slowJob(2'000'000);
    slow.timeout = sim::Tick(1e9);
    sched.enqueueAt(0, std::move(slow));
    sched.enqueueAt(1, quickJob());

    sched.start();
    s.run();

    const ServingSummary sum = sched.summary();
    EXPECT_EQ(sum.timedOut, 1u);
    EXPECT_EQ(sum.lateJobs, 1u);
    EXPECT_EQ(sum.completed, 1u);
    EXPECT_EQ(sum.wedgedGroups, 0u)
        << "a late ack must reclaim the quarantined group";
    EXPECT_EQ(sched.jobs()[0].state, JobState::TimedOut);
    EXPECT_EQ(sched.jobs()[1].state, JobState::Completed);
    EXPECT_GT(sched.jobs()[1].dispatchedAt,
              sched.jobs()[0].finishedAt)
        << "the follow-up can only dispatch after the reclamation";
    EXPECT_TRUE(s.allFinished());
}

TEST(OffloadScheduler, ClosedLoopResubmitsFromCompletionHook)
{
    soc::Soc s;
    soc::HostA9 a9(s.eventQueue(), s.mbc());
    OffloadScheduler sched(s, a9, oneGroup());

    const unsigned target = 12;
    unsigned issued = 2;
    sched.enqueueAt(0, quickJob());
    sched.enqueueAt(0, quickJob());
    sched.onComplete([&](const JobRecord &) {
        if (issued < target) {
            ++issued;
            EXPECT_TRUE(sched.submitNow(quickJob()));
        }
    });

    sched.start();
    s.run();

    EXPECT_EQ(sched.summary().completed, target);
    EXPECT_EQ(sched.summary().rejected, 0u);
    EXPECT_TRUE(s.allFinished());
    EXPECT_TRUE(a9.finished());
}

// ----------------------------------------------------------------
// Recovery paths: requeue, attempt budgets, failure attribution,
// and dispatch-id-keyed late-ack reclamation.
// ----------------------------------------------------------------

namespace {

/** Two-group chip: a fault costs one group, not the test. */
OffloadParams
twoGroups()
{
    OffloadParams p;
    p.nCores = 8;
    p.groupSize = 4;
    return p;
}

} // namespace

TEST(OffloadScheduler, ReapedJobRequeuesAndCompletesElsewhere)
{
    soc::Soc s;
    soc::HostA9 a9(s.eventQueue(), s.mbc());
    OffloadScheduler sched(s, a9, twoGroups());

    // First dispatch wedges lane 0 forever; the retry is clean.
    auto dispatches = std::make_shared<unsigned>(0);
    JobRequest req;
    req.timeout = sim::Tick(1e9); // 1 ms
    req.maxAttempts = 2;          // per-request override
    req.makeJob = [dispatches](const apps::ServingContext &) {
        const unsigned n = (*dispatches)++;
        apps::ServingJob job;
        job.stage = [] {};
        job.lane = [n](core::DpCore &c, unsigned lane) {
            if (n == 0 && lane == 0)
                c.blockUntil([] { return false; });
            c.alu(16);
        };
        return job;
    };
    sched.enqueueAt(0, std::move(req));

    sched.start();
    s.run();

    const ServingSummary sum = sched.summary();
    EXPECT_EQ(sum.completed, 1u);
    EXPECT_EQ(sum.timedOut, 0u);
    EXPECT_EQ(sum.requeued, 1u);
    EXPECT_EQ(sum.quarantines, 1u);
    EXPECT_EQ(sum.wedgedGroups, 1u)
        << "the wedged group stays quarantined";
    const JobRecord &rec = sched.jobs()[0];
    EXPECT_EQ(rec.state, JobState::Completed);
    EXPECT_EQ(rec.attempts, 2u);
    EXPECT_EQ(s.unfinishedCores().size(), 1u);
    EXPECT_TRUE(a9.finished());
}

TEST(OffloadScheduler, ExhaustedAttemptsReportDeadlineCause)
{
    soc::Soc s;
    soc::HostA9 a9(s.eventQueue(), s.mbc());
    OffloadParams p = twoGroups();
    p.maxAttempts = 2;
    OffloadScheduler sched(s, a9, p);

    JobRequest wedge = wedgedJob(); // wedges on every attempt
    wedge.timeout = sim::Tick(1e9);
    sched.enqueueAt(0, std::move(wedge));

    sched.start();
    s.run();

    const ServingSummary sum = sched.summary();
    EXPECT_EQ(sum.completed, 0u);
    EXPECT_EQ(sum.timedOut, 1u);
    EXPECT_EQ(sum.requeued, 1u);
    EXPECT_EQ(sum.quarantines, 2u);
    EXPECT_EQ(sum.wedgedGroups, 2u);
    EXPECT_EQ(sum.wedgeTimeouts, 0u)
        << "a parked fiber is not a DMAC wedge";
    const JobRecord &rec = sched.jobs()[0];
    EXPECT_EQ(rec.state, JobState::TimedOut);
    EXPECT_EQ(rec.attempts, 2u);
    EXPECT_STREQ(rec.cause, "deadline");
    EXPECT_LT(sum.availability, 1.0);
    EXPECT_TRUE(a9.finished());
}

TEST(OffloadScheduler, HungDmacTimeoutIsAttributedToTheWedge)
{
    sim::faultPlane().reset();
    sim::faultPlane().configure("dms.wedge@nth=1,max=1", 3);

    soc::Soc s;
    soc::HostA9 a9(s.eventQueue(), s.mbc());
    OffloadScheduler sched(s, a9, twoGroups());

    // Lane 0 pushes one DMS descriptor and waits unbounded; the
    // injected DMAC wedge drops its completion, so the job is
    // reaped and the reaper must blame the hung DMAC.
    JobRequest req;
    req.timeout = sim::Tick(1e9);
    req.makeJob = [](const apps::ServingContext &ctx) {
        apps::ServingJob job;
        job.stage = [] {};
        job.lane = [ctx](core::DpCore &c, unsigned lane) {
            if (lane != 0) {
                c.alu(16);
                return;
            }
            rt::DmsCtl ctl(c, ctx.soc->dmsFor(c.id()));
            ctl.ddrToDmem()
                .rows(64)
                .width(4)
                .from(ctx.arena)
                .to(0)
                .event(0)
                .push(0);
            ctl.wfe(0); // hangs: the wedge never completes it
        };
        return job;
    };
    sched.enqueueAt(0, std::move(req));
    sched.enqueueAt(1, quickJob()); // the other group still serves

    sched.start();
    s.run();
    sim::faultPlane().reset();

    const ServingSummary sum = sched.summary();
    EXPECT_EQ(sum.completed, 1u);
    EXPECT_EQ(sum.timedOut, 1u);
    EXPECT_EQ(sum.wedgeTimeouts, 1u);
    const JobRecord &rec = sched.jobs()[0];
    EXPECT_EQ(rec.state, JobState::TimedOut);
    EXPECT_STREQ(rec.cause, "dmsWedge");
    EXPECT_TRUE(a9.finished());
}

TEST(OffloadScheduler, LateAckFromOldDispatchReclaimsDuringRetry)
{
    soc::Soc s;
    soc::HostA9 a9(s.eventQueue(), s.mbc());
    OffloadParams p = twoGroups();
    p.maxAttempts = 2;
    OffloadScheduler sched(s, a9, p);

    // Attempt 1 is slow-but-finite (reaped, acks late); attempt 2
    // is quick. The late acks carry the first dispatch id and must
    // reclaim the quarantined group — not be miscredited to the
    // job, which by then is completing on the other group.
    auto dispatches = std::make_shared<unsigned>(0);
    JobRequest req;
    req.timeout = sim::Tick(1e9); // 1 ms
    req.makeJob = [dispatches](const apps::ServingContext &) {
        const unsigned n = (*dispatches)++;
        apps::ServingJob job;
        job.stage = [] {};
        job.lane = [n](core::DpCore &c, unsigned) {
            c.sleepCycles(n == 0 ? 2'000'000 : 1'000);
        };
        return job;
    };
    sched.enqueueAt(0, std::move(req));
    // A late arrival keeps the host listening past the late acks.
    sched.enqueueAt(sim::Tick(4e9), quickJob());

    sched.start();
    s.run();

    const ServingSummary sum = sched.summary();
    EXPECT_EQ(sum.completed, 2u);
    EXPECT_EQ(sum.timedOut, 0u);
    EXPECT_EQ(sum.requeued, 1u);
    EXPECT_EQ(sum.quarantines, 1u);
    EXPECT_EQ(sum.lateJobs, 1u);
    EXPECT_EQ(sum.wedgedGroups, 0u)
        << "the late acks must reclaim the quarantined group";
    const JobRecord &rec = sched.jobs()[0];
    EXPECT_EQ(rec.state, JobState::Completed);
    EXPECT_EQ(rec.attempts, 2u);
    EXPECT_LT(sum.availability, 1.0);
    EXPECT_TRUE(s.allFinished());
    EXPECT_TRUE(a9.finished());
}

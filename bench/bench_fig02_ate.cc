/**
 * @file
 * Figure 2: performance of ATE remote procedure calls — measured
 * round-trip response times for hardware loads, stores, atomic
 * fetch-and-add and compare-and-swap, near (same macro) and far
 * (across macros), plus a software RPC for contrast. The paper's
 * figure shows tens of core cycles for hardware RPCs with a clear
 * near/far split and software RPCs an order of magnitude costlier.
 */

#include <functional>

#include "bench/report.hh"
#include "soc/soc.hh"

using namespace dpu;

namespace {

double
cyclesFor(const std::function<void(core::DpCore &, ate::Ate &,
                                   unsigned)> &op,
          unsigned target, unsigned iters)
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 8 << 20;
    soc::Soc s(p);
    sim::Tick dt = 0;
    s.start(0, [&](core::DpCore &c) {
        // Warm once, then measure the round trips.
        op(c, s.ate(), target);
        sim::Tick t0 = c.now();
        for (unsigned i = 0; i < iters; ++i)
            op(c, s.ate(), target);
        dt = (c.now() - t0) / iters;
    });
    s.run();
    return double(sim::dpCoreClock.ticksToCycles(dt));
}

} // namespace

int
main(int argc, char **argv)
{
    sim::setVerbose(false);
    const bool smoke = bench::smokeRun(argc, argv);
    const unsigned iters = smoke ? 8 : 64;
    bench::header("Figure 2", "ATE remote procedure call latency");

    struct Op
    {
        const char *name;
        std::function<void(core::DpCore &, ate::Ate &, unsigned)> fn;
    };
    const Op ops[] = {
        {"hw load", [](core::DpCore &c, ate::Ate &a, unsigned t) {
             a.remoteLoad(c, t, mem::dmemAddr(t, 0), 8);
         }},
        {"hw store", [](core::DpCore &c, ate::Ate &a, unsigned t) {
             a.remoteStore(c, t, mem::dmemAddr(t, 0), 1, 8);
         }},
        {"hw fetch-add", [](core::DpCore &c, ate::Ate &a, unsigned t) {
             a.fetchAdd(c, t, mem::dmemAddr(t, 0), 1, 8);
         }},
        {"hw compare-swap",
         [](core::DpCore &c, ate::Ate &a, unsigned t) {
             a.compareSwap(c, t, mem::dmemAddr(t, 0), 0, 0, 8);
         }},
    };

    bench::row("  %-18s %14s %14s", "operation", "near (cycles)",
               "far (cycles)");
    for (const Op &op : ops) {
        double near = cyclesFor(op.fn, 1, iters);  // same macro
        double far = cyclesFor(op.fn, 31, iters);  // macro 3
        bench::row("  %-18s %14.0f %14.0f", op.name, near, far);
    }

    // Software RPC (interrupt + handler) for contrast. The remote
    // core idles in a wfe-like block so the interrupt is taken
    // immediately.
    {
        soc::SocParams p = soc::dpu40nm();
        p.ddrBytes = 8 << 20;
        soc::Soc s(p);
        sim::Tick dt = 0;
        bool stop = false;
        s.start(31, [&](core::DpCore &c) {
            c.blockUntil([&] { return stop; });
        });
        const unsigned sw_iters = smoke ? 4 : 16;
        s.start(0, [&](core::DpCore &c) {
            s.ate().swRpc(c, 31, [](core::DpCore &) {});
            sim::Tick t0 = c.now();
            for (unsigned i = 0; i < sw_iters; ++i)
                s.ate().swRpc(c, 31, [](core::DpCore &) {});
            dt = (c.now() - t0) / sw_iters;
            stop = true;
            s.core(31).wake(c.now());
        });
        s.run();
        bench::row("  %-18s %14s %14.0f", "sw RPC (far)", "-",
                   double(sim::dpCoreClock.ticksToCycles(dt)));
    }

    bench::row("\n  paper shape: hw RPCs are tens of cycles; far >"
               " near; sw RPC ~10x costlier (interrupt + handler).");
    return 0;
}

/**
 * @file
 * Rack-scale serving bench: the paper's deployment posture (500+
 * DPUs behind a fabric, Section 6) compressed onto the simulated
 * rack tier.
 *
 *  1. Board scaling curve — an open-loop arrival trace (diurnal
 *     curve + bursts + Zipfian hot keys, rack/trace.hh) drives the
 *     RackScheduler at 1, 2, 4 and 8 boards. Offered load scales
 *     with the board count (weak scaling: fixed requests/sec per
 *     board), so ideal "users served per simulated second" grows
 *     linearly and every deviation is placement skew, ingress
 *     serialization or admission shedding. The run fails (non-zero
 *     exit) when the 2-board rack does not beat 1.6x the 1-board
 *     headline.
 *  2. Fault overlay (--faults "spec") — the 2-board trace replayed
 *     under a seeded fault schedule; reports availability, p99 and
 *     where the lost requests went (board outages vs network drops
 *     vs admission).
 *  3. Skew step — a 4-board rack whose trace collapses most
 *     traffic onto a handful of keys, all of whose partitions hash
 *     onto ONE board, a third of the way in. The same trace runs
 *     twice: static hash placement (the hot board saturates and
 *     sheds) vs the live balancer (hot partitions migrate off over
 *     the rack network). The run fails unless the balanced run
 *     recovers >= 1.3x the static throughput with a lower p99.
 *  4. Outage recovery (--outage, replacing the other sections) —
 *     a 4-board rack provisioned with ~17% admission headroom
 *     loses one board to rack.boardCrash at t = 3 ms. The failure
 *     detector (rack/health.hh) must notice from heartbeats and
 *     missing acks alone, the repair controller promotes the
 *     surviving replicas and re-replicates the lost partitions,
 *     and once the board rejoins the balancer walks load back onto
 *     it. The section gates on detection latency, the rejoin
 *     bound, and the per-millisecond admitted rate in the last two
 *     windows recovering to >= 90% of the pre-outage rate — then
 *     replays the identical scenario nine more times across
 *     --threads {1, 2, 4} as a determinism wall.
 *
 * Racks are built through topo::ClusterTopology — this bench is
 * also the builder's largest consumer. Output: human tables plus
 * one JSON line (last line of stdout) for CI artifact collection
 * (BENCH_rack.json; BENCH_rack_outage.json for --outage).
 */

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench/report.hh"
#include "host/offload.hh"
#include "rack/health.hh"
#include "rack/rack.hh"
#include "rack/scheduler.hh"
#include "rack/trace.hh"
#include "rack/workload.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/stats_registry.hh"
#include "topo/topology.hh"

using namespace dpu;

namespace {

struct RackPoint
{
    unsigned nBoards = 0;
    rack::RackSummary sum;
    std::uint64_t traceEvents = 0;
    double speedup = 0; ///< users/simsec vs 1 board
};

/**
 * One trace-driven run on a fresh rack (clean fault plane unless
 * @p faults is non-empty). The master trace is generated once at
 * the max-scale rate; an n-board rack takes every
 * (maxBoards/n)-th event, so offered load is exactly proportional
 * to the board count (weak scaling without realization noise).
 */
RackPoint
traceRun(unsigned n_boards, unsigned max_boards,
         const std::vector<rack::TraceEvent> &master,
         const host::OffloadParams &op,
         const rack::PlacementParams &place, unsigned threads,
         const char *faults, std::uint64_t fault_seed)
{
    sim::faultPlane().reset();
    if (faults && *faults)
        sim::faultPlane().configure(faults, fault_seed);

    rack::PlacementParams pl = place;
    pl.replication = std::min(pl.replication, n_boards);
    // The serving mix's working sets are a few MB; the default
    // 256 MB DDR per chip is pure page-fault overhead times 30
    // chips across the curve. 64 MB still fits every per-group job
    // arena (1 MB base + 8 groups x 6 MB) under full-queue load.
    soc::SocParams sp = soc::dpu40nm();
    sp.ddrBytes = std::size_t(64) << 20;
    topo::ClusterTopology topo =
        topo::ClusterTopology::rack(n_boards, 2)
            .chip(sp)
            .placement(pl)
            .threads(threads);
    const std::string err = topo.validate();
    sim_assert(err.empty(), "bench topology invalid: %s",
               err.c_str());
    auto r = topo.buildRack();
    rack::RackScheduler sched(*r, op, pl);

    const unsigned stride = max_boards / n_boards;
    const std::vector<rack::MixApp> mix = rack::servingMix();
    std::uint64_t fed = 0;
    for (std::size_t i = 0; i < master.size(); i += stride) {
        sched.enqueueAt(master[i].at,
                        rack::makeRequest(master[i], mix));
        ++fed;
    }
    sched.start();
    r->run();
    bench::flushTrace();

    RackPoint pt;
    pt.nBoards = n_boards;
    pt.traceEvents = fed;
    pt.sum = sched.summary();
    sim::faultPlane().reset();
    return pt;
}

/** True when `flag` appears verbatim on the command line. */
bool
flagSet(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    return false;
}

// ----------------------------------------------------------------
// 4. Outage recovery (--outage)
// ----------------------------------------------------------------

struct OutageRun
{
    rack::RackSummary sum;
    sim::StatsSnapshot snap;
    /** Front-end arrivals / admissions per 1 ms window. The gate
     *  compares per-window served fractions, not raw counts — the
     *  Poisson trace realizes ~±10% arrival noise per window,
     *  which would drown a 90% floor on raw admitted rates. */
    std::vector<std::uint64_t> offeredWin;
    std::vector<std::uint64_t> admittedWin;
    sim::Tick downAt = 0;   ///< crash board declared Down
    sim::Tick rejoinAt = 0; ///< crash board back to Healthy
    bool finished = false;
};

/** The outage scenario: 4 boards x 2 DPUs with ~17% admission
 *  headroom, detection + repair + balancer live, one board killed
 *  by rack.boardCrash at @p crash_at. A flat trace (no diurnal
 *  swing, no bursts) so per-window admitted rates compare like
 *  with like. */
OutageRun
outageRun(unsigned threads, bool smoke, unsigned crash_board,
          sim::Tick crash_at)
{
    const std::string spec =
        "rack.boardCrash@p=1,unit=" + std::to_string(crash_board) +
        ",from=" + std::to_string(crash_at) + ",max=1";
    sim::faultPlane().reset();
    sim::faultPlane().configure(spec.c_str(), 1);

    soc::SocParams sp = soc::dpu40nm();
    sp.ddrBytes = std::size_t(64) << 20;

    // Offered load sits at ~86% of the rack's admission capacity:
    // losing one board of four drops capacity below the offered
    // rate, so the outage is visible as admission loss until the
    // board rejoins and the balancer walks load back onto it.
    rack::PlacementParams pl;
    pl.replication = 2;
    pl.admitWindow = sim::Tick(1'000'000'000); // 1 ms
    pl.admitPerWindow = smoke ? 12 : 35;
    pl.balance.window = sim::Tick(500'000'000);
    pl.balance.ewmaAlpha = 0.7;
    pl.balance.hotFactor = 1.1;
    pl.balance.maxMigrationsPerWindow = 3;
    pl.balance.minPartitionLoad = 1.0;
    pl.health.heartbeatPeriod = sim::Tick(200'000'000); // 200 us
    pl.health.ackTimeout = sim::Tick(50'000'000);       // 50 us
    pl.health.suspectAfter = 2;
    pl.health.downAfter = 4;
    pl.health.rejoinAfter = 3;

    topo::ClusterTopology topo = topo::ClusterTopology::rack(4, 2)
                                     .chip(sp)
                                     .placement(pl)
                                     .threads(threads);
    const std::string err = topo.validate();
    sim_assert(err.empty(), "outage topology invalid: %s",
               err.c_str());
    auto r = topo.buildRack();
    rack::RackScheduler sched(*r, host::OffloadParams{}, pl);

    rack::TraceConfig tc;
    tc.ratePerSec = smoke ? 40'000 : 120'000;
    tc.durationSec = 0.01;
    tc.diurnalAmp = 0;
    tc.burstsPerSec = 0;
    tc.seed = 19;
    tc.nApps = unsigned(rack::servingMix().size());
    const std::vector<rack::TraceEvent> trace =
        rack::generateTrace(tc);

    const sim::Tick win = sim::Tick(1'000'000'000);
    OutageRun out;
    out.offeredWin.assign(10, 0);
    out.admittedWin.assign(10, 0);
    const std::vector<rack::MixApp> mix = rack::servingMix();
    for (const rack::TraceEvent &ev : trace) {
        const rack::AdmitResult res =
            sched.enqueueAt(ev.at, rack::makeRequest(ev, mix));
        const std::size_t w = std::size_t(ev.at / win);
        if (w < out.offeredWin.size()) {
            ++out.offeredWin[w];
            if (res == rack::AdmitResult::Admitted)
                ++out.admittedWin[w];
        }
    }
    sched.start();
    r->run();
    bench::flushTrace();

    out.finished = r->allFinished();
    out.sum = sched.summary();
    for (const rack::HealthTransition &t :
         sched.health().transitions()) {
        if (t.board != crash_board)
            continue;
        if (!out.downAt && t.to == rack::BoardHealth::Down)
            out.downAt = t.at;
        else if (out.downAt && !out.rejoinAt &&
                 t.from == rack::BoardHealth::Probation &&
                 t.to == rack::BoardHealth::Healthy)
            out.rejoinAt = t.at;
    }
    sim::faultPlane().reset();
    out.snap = sim::StatsRegistry::instance().snapshot();
    out.snap.counters["sim.finalTick"] = r->now();
    return out;
}

/** The --outage entry point (runs instead of the other sections). */
int
outageMain(bool smoke, unsigned threads)
{
    const unsigned crash_board = 1;
    const sim::Tick crash_at = sim::Tick(3'000'000'000); // 3 ms

    bench::header("rack outage recovery",
                  "board 1 of 4 crashes at 3 ms; detect from "
                  "heartbeats, promote survivors, re-replicate, "
                  "rejoin, rebalance");

    OutageRun run = outageRun(threads, smoke, crash_board,
                              crash_at);
    bool ok = run.finished &&
              run.sum.serving.validationFailed == 0 &&
              run.sum.serving.completed > 0;

    bench::row("  %8s %s", "window",
               "admitted / offered per 1 ms slice");
    std::vector<double> frac(run.offeredWin.size(), 0);
    for (std::size_t w = 0; w < run.offeredWin.size(); ++w) {
        frac[w] = run.offeredWin[w]
                      ? double(run.admittedWin[w]) /
                            double(run.offeredWin[w])
                      : 0;
        bench::row("  %7zums %4llu / %4llu  (%.3f)%s", w,
                   (unsigned long long)run.admittedWin[w],
                   (unsigned long long)run.offeredWin[w], frac[w],
                   w == 3 ? "   <- crash" : "");
    }

    // Pre-outage served fraction over the three whole windows
    // before the crash; recovered fraction over the last two. The
    // dip between them is the outage cost the report quotes.
    double pre = 0, tail = 0, dip = 2.0;
    for (unsigned w = 0; w < 3; ++w)
        pre += frac[w] / 3;
    for (unsigned w = 8; w < 10; ++w)
        tail += frac[w] / 2;
    for (unsigned w = 3; w < 8; ++w)
        dip = std::min(dip, frac[w]);
    const double recovery = pre > 0 ? tail / pre : 0;

    const double detectMs =
        run.downAt ? double(run.downAt - crash_at) / 1e9 : -1;
    const double rejoinMs =
        run.rejoinAt ? double(run.rejoinAt - crash_at) / 1e9 : -1;
    bench::row("  detected Down %.2f ms after the crash; back to "
               "Healthy %.2f ms after (repairs %llu started, "
               "%llu committed)",
               detectMs, rejoinMs,
               (unsigned long long)run.sum.repairsStarted,
               (unsigned long long)run.sum.repairsCommitted);
    bench::row("  served fraction: pre %.3f, dip %.3f, tail %.3f "
               "-> recovery %.2fx (failovers %llu, reroutes %llu, "
               "rejected %llu, boardsDown %llu)",
               pre, dip, tail, recovery,
               (unsigned long long)run.sum.failovers,
               (unsigned long long)run.sum.admitReroutes,
               (unsigned long long)run.sum.rejected,
               (unsigned long long)run.sum.boardsDown);

    // Gates: detection within the hysteresis bound, rejoin (which
    // requires every repair to have committed) within 2.5 ms, and
    // the recovery floor.
    // downAfter heartbeat rounds plus two ack timeouts, matching
    // the knobs outageRun sets (4 x 200 us + 2 x 50 us).
    const double gateRecovery = 0.9;
    const sim::Tick detectBound =
        4 * sim::Tick(200'000'000) + 2 * sim::Tick(50'000'000);
    if (!run.downAt || run.downAt - crash_at > detectBound) {
        bench::row("  FAIL: detection outside the %.2f ms "
                   "hysteresis bound",
                   double(detectBound) / 1e9);
        ok = false;
    }
    if (!run.rejoinAt ||
        run.rejoinAt - crash_at > sim::Tick(2'500'000'000)) {
        bench::row("  FAIL: the crashed board never rejoined "
                   "within 2.5 ms");
        ok = false;
    }
    if (run.sum.repairsCommitted == 0) {
        bench::row("  FAIL: no re-replication committed");
        ok = false;
    }
    if (recovery < gateRecovery) {
        bench::row("  FAIL: tail served fraction %.2fx of "
                   "pre-outage < %.2fx floor",
                   recovery, gateRecovery);
        ok = false;
    }

    // Determinism wall: the identical scenario nine more times
    // across worker-thread counts must replay every stat
    // bit-identically.
    const unsigned wall[] = {2, 4, 1, 2, 4, 1, 2, 4, 1};
    unsigned wallFailures = 0;
    for (unsigned i = 0; i < 9; ++i) {
        OutageRun rerun =
            outageRun(wall[i], smoke, crash_board, crash_at);
        const auto diffs =
            sim::diffSnapshots(run.snap, rerun.snap);
        if (!diffs.empty()) {
            ++wallFailures;
            bench::row("  FAIL: wall run %u (--threads %u): %zu "
                       "stat(s) differ",
                       i + 2, wall[i], diffs.size());
        }
    }
    bench::row("  determinism wall: 10 runs across --threads "
               "{1,2,4}, %u mismatch(es)",
               wallFailures);
    ok = ok && wallFailures == 0;

    {
        bench::Json j;
        j.field("bench", "rack_outage");
        j.field("smoke", std::uint64_t(smoke));
        j.field("nBoards", std::uint64_t(4));
        j.field("crashBoard", std::uint64_t(crash_board));
        j.field("crashAtMs", double(crash_at) / 1e9);
        j.field("preServedFraction", pre);
        j.field("dipServedFraction", dip);
        j.field("tailServedFraction", tail);
        j.field("recovery", recovery);
        j.field("gateRecovery", gateRecovery);
        j.field("detectMs", detectMs);
        j.field("rejoinMs", rejoinMs);
        j.field("probes", run.sum.probes);
        j.field("repairsStarted", run.sum.repairsStarted);
        j.field("repairsCommitted", run.sum.repairsCommitted);
        j.field("failovers", run.sum.failovers);
        j.field("admitReroutes", run.sum.admitReroutes);
        j.field("shed", run.sum.shed);
        j.field("boardsDown", run.sum.boardsDown);
        j.field("netLost", run.sum.netLost);
        j.field("rejected", run.sum.rejected);
        j.field("migCommitted", run.sum.migCommitted);
        j.field("determinismRuns", std::uint64_t(10));
        j.field("determinismFailures",
                std::uint64_t(wallFailures));
        j.field("pass", std::uint64_t(ok));
    }

    if (!ok) {
        std::fprintf(stderr,
                     "bench_rack: FAILED outage gates\n");
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = bench::smokeRun(argc, argv);
    const char *faults =
        bench::argValue(argc, argv, "--faults", "");
    const std::uint64_t fault_seed = std::strtoull(
        bench::argValue(argc, argv, "--fault-seed", "1"), nullptr,
        0);
    // Boards run sequentially, so per-board worker threads only
    // help on long boards; serial epochs are the cheap default.
    const unsigned threads = unsigned(std::strtoul(
        bench::argValue(argc, argv, "--threads", "1"), nullptr, 0));

    if (flagSet(argc, argv, "--outage"))
        return outageMain(smoke, threads);

    // The arrival shape: one simulated "day" of 10 ms with a 50%
    // diurnal swing, 3x bursts and web-like key skew, generated
    // once at the 8-board rate and subsampled per point.
    const unsigned max_boards = 8;
    rack::TraceConfig tc;
    tc.ratePerSec = (smoke ? 800 : 2400) * max_boards;
    tc.durationSec = 0.01;
    tc.diurnalPeriodSec = 0.01;
    tc.seed = 7;
    tc.nApps = unsigned(rack::servingMix().size());
    const std::vector<rack::TraceEvent> master =
        rack::generateTrace(tc);

    host::OffloadParams op; // default queue/deadline policy
    rack::PlacementParams place;
    place.replication = 2;

    // ------------------------------------------------------------
    // 1. Board scaling curve
    // ------------------------------------------------------------
    bench::header("rack scaling",
                  "trace-driven serving at 1/2/4/8 boards "
                  "(2 DPUs each, replication 2)");
    bench::row("  %6s %8s %9s %10s %8s %8s %9s %8s", "boards",
               "offered", "admitted", "users/s", "p99 us",
               "avail", "netPeak", "speedup");

    std::vector<RackPoint> curve;
    bool ok = true;
    for (unsigned n : {1u, 2u, 4u, 8u}) {
        RackPoint pt = traceRun(n, max_boards, master, op, place,
                                threads, "", 0);
        const host::ServingSummary &s = pt.sum.serving;
        ok = ok && s.completed > 0 && s.validationFailed == 0;
        curve.push_back(pt);
    }
    const double base = curve.front().sum.usersPerSimSec;
    for (RackPoint &pt : curve) {
        pt.speedup =
            base > 0 ? pt.sum.usersPerSimSec / base : 0;
        bench::row(
            "  %6u %8llu %9llu %10.3g %8.1f %7.3f %8.1f%% %7.2fx",
            pt.nBoards, (unsigned long long)pt.sum.offered,
            (unsigned long long)pt.sum.admitted,
            pt.sum.usersPerSimSec, pt.sum.serving.p99Us,
            pt.sum.serving.availability,
            pt.sum.netPeakUtilization * 100, pt.speedup);
    }
    // Regression gate, not a flaky threshold: simulated time is
    // deterministic.
    const double gate2 = 1.6;
    if (curve[1].speedup <= gate2) {
        bench::row("  FAIL: 2-board speedup %.2fx <= %.2fx gate",
                   curve[1].speedup, gate2);
        ok = false;
    }
    bench::row("  headline: %.3g users served per simulated "
               "second on %u boards (%llu of %llu offered)",
               curve.back().sum.usersPerSimSec,
               curve.back().nBoards,
               (unsigned long long)curve.back().sum.serving.completed,
               (unsigned long long)curve.back().sum.offered);

    // ------------------------------------------------------------
    // 2. Fault overlay (optional)
    // ------------------------------------------------------------
    RackPoint faulted;
    bool ran_faulted = false;
    if (*faults) {
        bench::header("rack under faults", faults);
        faulted = traceRun(2, max_boards, master, op, place,
                           threads, faults, fault_seed);
        ran_faulted = true;
        const rack::RackSummary &fs = faulted.sum;
        ok = ok && fs.serving.completed > 0;
        bench::row("  served %.1f%% of %llu offered "
                   "(boardsDown %llu, netLost %llu, rejected %llu, "
                   "failovers %llu)",
                   fs.servedFraction * 100,
                   (unsigned long long)fs.offered,
                   (unsigned long long)fs.boardsDown,
                   (unsigned long long)fs.netLost,
                   (unsigned long long)fs.rejected,
                   (unsigned long long)fs.failovers);
        bench::row("  p99 %.1f us  availability %.3f  "
                   "%.3g users/s",
                   fs.serving.p99Us, fs.serving.availability,
                   fs.usersPerSimSec);
    }

    // ------------------------------------------------------------
    // 3. Skew step: static placement vs live rebalancing
    // ------------------------------------------------------------
    const unsigned skew_boards = 4;
    rack::PlacementParams staticPlace;
    staticPlace.replication = 2;

    // Hot keys: distinct partitions, every one of them hash-homed
    // on the same board, so the step lands a partition *group* on
    // one ingress (moving a single partition could only relocate,
    // never spread, the hot spot).
    const unsigned hot_board =
        rack::partitionHome(0, skew_boards);
    std::vector<std::uint64_t> hotKeys;
    std::vector<char> seen(staticPlace.keyPartitions, 0);
    for (std::uint64_t k = 0; hotKeys.size() < 8 && k < 1 << 16;
         ++k) {
        const unsigned part =
            rack::keyPartition(k, staticPlace.keyPartitions);
        if (seen[part] ||
            rack::partitionHome(part, skew_boards) != hot_board)
            continue;
        seen[part] = 1;
        hotKeys.push_back(k);
    }
    sim_assert(hotKeys.size() == 8,
               "key probe found only %zu co-homed partitions",
               hotKeys.size());

    // Much hotter than the scaling trace: the step must overrun
    // one board's DPU service capacity (~tens of kreq/s) for
    // placement to matter at all.
    rack::TraceConfig stc;
    stc.ratePerSec = 125'000.0 * skew_boards;
    stc.durationSec = 0.01;
    stc.diurnalPeriodSec = 0.01;
    stc.zipf = 0.6; // mild base skew; the step supplies the heat
    stc.seed = 11;
    stc.nApps = unsigned(rack::servingMix().size());
    stc.hotStepAtSec = 0.002;
    stc.hotStepFraction = 0.9;
    stc.hotStepKeys = hotKeys;
    const std::vector<rack::TraceEvent> skewMaster =
        rack::generateTrace(stc);

    rack::PlacementParams balPlace = staticPlace;
    balPlace.balance.window = sim::Tick(500'000'000); // 0.5 ms
    balPlace.balance.ewmaAlpha = 0.7;
    balPlace.balance.hotFactor = 1.1;
    balPlace.balance.maxMigrationsPerWindow = 3;
    balPlace.balance.minPartitionLoad = 2.0;

    bench::header("rack skew step",
                  "90% of traffic onto 8 partitions co-homed on "
                  "one of 4 boards at t=2ms; static vs balanced");
    RackPoint skewStatic =
        traceRun(skew_boards, skew_boards, skewMaster, op,
                 staticPlace, threads, "", 0);
    RackPoint skewBal =
        traceRun(skew_boards, skew_boards, skewMaster, op,
                 balPlace, threads, "", 0);
    const double recovery =
        skewStatic.sum.usersPerSimSec > 0
            ? skewBal.sum.usersPerSimSec /
                  skewStatic.sum.usersPerSimSec
            : 0;
    bench::row("  %9s %9s %10s %9s %9s %9s", "placement",
               "admitted", "users/s", "p99 us", "migrations",
               "forwarded");
    bench::row("  %9s %9llu %10.3g %9.1f %9llu %9llu", "static",
               (unsigned long long)skewStatic.sum.admitted,
               skewStatic.sum.usersPerSimSec,
               skewStatic.sum.serving.p99Us,
               (unsigned long long)skewStatic.sum.migCommitted,
               (unsigned long long)skewStatic.sum.forwarded);
    bench::row("  %9s %9llu %10.3g %9.1f %9llu %9llu", "balanced",
               (unsigned long long)skewBal.sum.admitted,
               skewBal.sum.usersPerSimSec,
               skewBal.sum.serving.p99Us,
               (unsigned long long)skewBal.sum.migCommitted,
               (unsigned long long)skewBal.sum.forwarded);
    bench::row("  recovery %.2fx throughput, p99 %.1f -> %.1f us, "
               "%llu KB of state migrated",
               recovery, skewStatic.sum.serving.p99Us,
               skewBal.sum.serving.p99Us,
               (unsigned long long)(skewBal.sum.migrationBytes >>
                                    10));
    const double gateRecovery = 1.3;
    if (skewBal.sum.migCommitted == 0) {
        bench::row("  FAIL: the balancer committed no migrations");
        ok = false;
    }
    if (recovery < gateRecovery) {
        bench::row("  FAIL: skew recovery %.2fx < %.2fx gate",
                   recovery, gateRecovery);
        ok = false;
    }
    if (skewBal.sum.serving.p99Us >=
        skewStatic.sum.serving.p99Us) {
        bench::row("  FAIL: balanced p99 %.1f us did not improve "
                   "on static %.1f us",
                   skewBal.sum.serving.p99Us,
                   skewStatic.sum.serving.p99Us);
        ok = false;
    }

    // ------------------------------------------------------------
    // JSON (last line of stdout)
    // ------------------------------------------------------------
    {
        bench::Json j;
        j.field("bench", "rack");
        j.field("smoke", std::uint64_t(smoke));
        j.field("dpusPerBoard", std::uint64_t(2));
        j.field("replication",
                std::uint64_t(place.replication));
        j.arr("scaling");
        for (const RackPoint &pt : curve) {
            j.elem();
            j.field("nBoards", std::uint64_t(pt.nBoards));
            j.field("offered", pt.sum.offered);
            j.field("admitted", pt.sum.admitted);
            j.field("completed", pt.sum.serving.completed);
            j.field("usersPerSimSec", pt.sum.usersPerSimSec);
            j.field("servedFraction", pt.sum.servedFraction);
            j.field("p50Us", pt.sum.serving.p50Us);
            j.field("p99Us", pt.sum.serving.p99Us);
            j.field("availability", pt.sum.serving.availability);
            j.field("netPeakUtilization",
                    pt.sum.netPeakUtilization);
            j.field("speedup", pt.speedup);
            j.end();
        }
        j.end();
        j.field("gate2", gate2);
        j.field("usersPerSimSec",
                curve.back().sum.usersPerSimSec);
        if (ran_faulted) {
            j.obj("faulted");
            j.field("spec", faults);
            j.field("offered", faulted.sum.offered);
            j.field("servedFraction", faulted.sum.servedFraction);
            j.field("boardsDown", faulted.sum.boardsDown);
            j.field("netLost", faulted.sum.netLost);
            j.field("rejected", faulted.sum.rejected);
            j.field("failovers", faulted.sum.failovers);
            j.field("p99Us", faulted.sum.serving.p99Us);
            j.field("availability",
                    faulted.sum.serving.availability);
            j.field("usersPerSimSec", faulted.sum.usersPerSimSec);
            j.end();
        }
        j.obj("skew");
        j.field("nBoards", std::uint64_t(skew_boards));
        j.field("hotPartitions", std::uint64_t(hotKeys.size()));
        j.field("staticUsersPerSimSec",
                skewStatic.sum.usersPerSimSec);
        j.field("balancedUsersPerSimSec",
                skewBal.sum.usersPerSimSec);
        j.field("recovery", recovery);
        j.field("gateRecovery", gateRecovery);
        j.field("staticP99Us", skewStatic.sum.serving.p99Us);
        j.field("balancedP99Us", skewBal.sum.serving.p99Us);
        j.field("migStarted", skewBal.sum.migStarted);
        j.field("migCommitted", skewBal.sum.migCommitted);
        j.field("migAborted", skewBal.sum.migAborted);
        j.field("forwarded", skewBal.sum.forwarded);
        j.field("migrationBytes", skewBal.sum.migrationBytes);
        j.end();
        j.field("pass", std::uint64_t(ok));
    }

    if (!ok) {
        std::fprintf(stderr, "bench_rack: FAILED gates\n");
        return 1;
    }
    return 0;
}

/**
 * @file
 * Rack-scale serving bench: the paper's deployment posture (500+
 * DPUs behind a fabric, Section 6) compressed onto the simulated
 * rack tier.
 *
 *  1. Board scaling curve — an open-loop arrival trace (diurnal
 *     curve + bursts + Zipfian hot keys, rack/trace.hh) drives the
 *     RackScheduler at 1, 2, 4 and 8 boards. Offered load scales
 *     with the board count (weak scaling: fixed requests/sec per
 *     board), so ideal "users served per simulated second" grows
 *     linearly and every deviation is placement skew, ingress
 *     serialization or admission shedding. The run fails (non-zero
 *     exit) when the 2-board rack does not beat 1.6x the 1-board
 *     headline.
 *  2. Fault overlay (--faults "spec") — the 2-board trace replayed
 *     under a seeded fault schedule; reports availability, p99 and
 *     where the lost requests went (board outages vs network drops
 *     vs admission).
 *
 * Racks are built through topo::ClusterTopology — this bench is
 * also the builder's largest consumer. Output: human tables plus
 * one JSON line (last line of stdout) for CI artifact collection
 * (BENCH_rack.json).
 */

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench/report.hh"
#include "host/offload.hh"
#include "rack/rack.hh"
#include "rack/scheduler.hh"
#include "rack/trace.hh"
#include "rack/workload.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"
#include "topo/topology.hh"

using namespace dpu;

namespace {

struct RackPoint
{
    unsigned nBoards = 0;
    rack::RackSummary sum;
    std::uint64_t traceEvents = 0;
    double speedup = 0; ///< users/simsec vs 1 board
};

/**
 * One trace-driven run on a fresh rack (clean fault plane unless
 * @p faults is non-empty). The master trace is generated once at
 * the max-scale rate; an n-board rack takes every
 * (maxBoards/n)-th event, so offered load is exactly proportional
 * to the board count (weak scaling without realization noise).
 */
RackPoint
traceRun(unsigned n_boards, unsigned max_boards,
         const std::vector<rack::TraceEvent> &master,
         const host::OffloadParams &op,
         const rack::PlacementParams &place, unsigned threads,
         const char *faults, std::uint64_t fault_seed)
{
    sim::faultPlane().reset();
    if (faults && *faults)
        sim::faultPlane().configure(faults, fault_seed);

    rack::PlacementParams pl = place;
    pl.replication = std::min(pl.replication, n_boards);
    // The serving mix's working sets are a few MB; the default
    // 256 MB DDR per chip is pure page-fault overhead times 30
    // chips across the curve.
    soc::SocParams sp = soc::dpu40nm();
    sp.ddrBytes = std::size_t(32) << 20;
    topo::ClusterTopology topo =
        topo::ClusterTopology::rack(n_boards, 2)
            .chip(sp)
            .placement(pl)
            .threads(threads);
    const std::string err = topo.validate();
    sim_assert(err.empty(), "bench topology invalid: %s",
               err.c_str());
    auto r = topo.buildRack();
    rack::RackScheduler sched(*r, op, pl);

    const unsigned stride = max_boards / n_boards;
    const std::vector<rack::MixApp> mix = rack::servingMix();
    std::uint64_t fed = 0;
    for (std::size_t i = 0; i < master.size(); i += stride) {
        sched.enqueueAt(master[i].at,
                        rack::makeRequest(master[i], mix));
        ++fed;
    }
    sched.start();
    r->run();
    bench::flushTrace();

    RackPoint pt;
    pt.nBoards = n_boards;
    pt.traceEvents = fed;
    pt.sum = sched.summary();
    sim::faultPlane().reset();
    return pt;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = bench::smokeRun(argc, argv);
    const char *faults =
        bench::argValue(argc, argv, "--faults", "");
    const std::uint64_t fault_seed = std::strtoull(
        bench::argValue(argc, argv, "--fault-seed", "1"), nullptr,
        0);
    // Boards run sequentially, so per-board worker threads only
    // help on long boards; serial epochs are the cheap default.
    const unsigned threads = unsigned(std::strtoul(
        bench::argValue(argc, argv, "--threads", "1"), nullptr, 0));

    // The arrival shape: one simulated "day" of 10 ms with a 50%
    // diurnal swing, 3x bursts and web-like key skew, generated
    // once at the 8-board rate and subsampled per point.
    const unsigned max_boards = 8;
    rack::TraceConfig tc;
    tc.ratePerSec = (smoke ? 800 : 2400) * max_boards;
    tc.durationSec = 0.01;
    tc.diurnalPeriodSec = 0.01;
    tc.seed = 7;
    tc.nApps = unsigned(rack::servingMix().size());
    const std::vector<rack::TraceEvent> master =
        rack::generateTrace(tc);

    host::OffloadParams op; // default queue/deadline policy
    rack::PlacementParams place;
    place.replication = 2;

    // ------------------------------------------------------------
    // 1. Board scaling curve
    // ------------------------------------------------------------
    bench::header("rack scaling",
                  "trace-driven serving at 1/2/4/8 boards "
                  "(2 DPUs each, replication 2)");
    bench::row("  %6s %8s %9s %10s %8s %8s %9s %8s", "boards",
               "offered", "admitted", "users/s", "p99 us",
               "avail", "netPeak", "speedup");

    std::vector<RackPoint> curve;
    bool ok = true;
    for (unsigned n : {1u, 2u, 4u, 8u}) {
        RackPoint pt = traceRun(n, max_boards, master, op, place,
                                threads, "", 0);
        const host::ServingSummary &s = pt.sum.serving;
        ok = ok && s.completed > 0 && s.validationFailed == 0;
        curve.push_back(pt);
    }
    const double base = curve.front().sum.usersPerSimSec;
    for (RackPoint &pt : curve) {
        pt.speedup =
            base > 0 ? pt.sum.usersPerSimSec / base : 0;
        bench::row(
            "  %6u %8llu %9llu %10.3g %8.1f %7.3f %8.1f%% %7.2fx",
            pt.nBoards, (unsigned long long)pt.sum.offered,
            (unsigned long long)pt.sum.admitted,
            pt.sum.usersPerSimSec, pt.sum.serving.p99Us,
            pt.sum.serving.availability,
            pt.sum.netPeakUtilization * 100, pt.speedup);
    }
    // Regression gate, not a flaky threshold: simulated time is
    // deterministic.
    const double gate2 = 1.6;
    if (curve[1].speedup <= gate2) {
        bench::row("  FAIL: 2-board speedup %.2fx <= %.2fx gate",
                   curve[1].speedup, gate2);
        ok = false;
    }
    bench::row("  headline: %.3g users served per simulated "
               "second on %u boards (%llu of %llu offered)",
               curve.back().sum.usersPerSimSec,
               curve.back().nBoards,
               (unsigned long long)curve.back().sum.serving.completed,
               (unsigned long long)curve.back().sum.offered);

    // ------------------------------------------------------------
    // 2. Fault overlay (optional)
    // ------------------------------------------------------------
    RackPoint faulted;
    bool ran_faulted = false;
    if (*faults) {
        bench::header("rack under faults", faults);
        faulted = traceRun(2, max_boards, master, op, place,
                           threads, faults, fault_seed);
        ran_faulted = true;
        const rack::RackSummary &fs = faulted.sum;
        ok = ok && fs.serving.completed > 0;
        bench::row("  served %.1f%% of %llu offered "
                   "(boardsDown %llu, netLost %llu, rejected %llu, "
                   "failovers %llu)",
                   fs.servedFraction * 100,
                   (unsigned long long)fs.offered,
                   (unsigned long long)fs.boardsDown,
                   (unsigned long long)fs.netLost,
                   (unsigned long long)fs.rejected,
                   (unsigned long long)fs.failovers);
        bench::row("  p99 %.1f us  availability %.3f  "
                   "%.3g users/s",
                   fs.serving.p99Us, fs.serving.availability,
                   fs.usersPerSimSec);
    }

    // ------------------------------------------------------------
    // JSON (last line of stdout)
    // ------------------------------------------------------------
    {
        bench::Json j;
        j.field("bench", "rack");
        j.field("smoke", std::uint64_t(smoke));
        j.field("dpusPerBoard", std::uint64_t(2));
        j.field("replication",
                std::uint64_t(place.replication));
        j.arr("scaling");
        for (const RackPoint &pt : curve) {
            j.elem();
            j.field("nBoards", std::uint64_t(pt.nBoards));
            j.field("offered", pt.sum.offered);
            j.field("admitted", pt.sum.admitted);
            j.field("completed", pt.sum.serving.completed);
            j.field("usersPerSimSec", pt.sum.usersPerSimSec);
            j.field("servedFraction", pt.sum.servedFraction);
            j.field("p50Us", pt.sum.serving.p50Us);
            j.field("p99Us", pt.sum.serving.p99Us);
            j.field("availability", pt.sum.serving.availability);
            j.field("netPeakUtilization",
                    pt.sum.netPeakUtilization);
            j.field("speedup", pt.speedup);
            j.end();
        }
        j.end();
        j.field("gate2", gate2);
        j.field("usersPerSimSec",
                curve.back().sum.usersPerSimSec);
        if (ran_faulted) {
            j.obj("faulted");
            j.field("spec", faults);
            j.field("offered", faulted.sum.offered);
            j.field("servedFraction", faulted.sum.servedFraction);
            j.field("boardsDown", faulted.sum.boardsDown);
            j.field("netLost", faulted.sum.netLost);
            j.field("rejected", faulted.sum.rejected);
            j.field("failovers", faulted.sum.failovers);
            j.field("p99Us", faulted.sum.serving.p99Us);
            j.field("availability",
                    faulted.sum.serving.availability);
            j.field("usersPerSimSec", faulted.sum.usersPerSimSec);
            j.end();
        }
        j.field("pass", std::uint64_t(ok));
    }

    if (!ok) {
        std::fprintf(stderr, "bench_rack: FAILED gates\n");
        return 1;
    }
    return 0;
}

/**
 * @file
 * Figure 13: bandwidth of the DMS partitioning engine for the three
 * schemes (CRC hash-radix, raw radix, range), 32-way partitioning
 * of a four-column table. The paper reports ~9.3 GB/s for every
 * scheme — ahead of HARP's published 6 GB/s — and notes an
 * additional 32-way SOFTWARE partition can ride along at the same
 * rate (the 1024-way point), which the high-NDV group-by phase A
 * measures here.
 */

#include "apps/sql/groupby.hh"
#include "bench/report.hh"
#include "rt/partition.hh"
#include "sim/rng.hh"
#include "soc/soc.hh"

using namespace dpu;

namespace {

double
run(const rt::PartitionScheme &scheme, std::uint32_t rows)
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 64 << 20;
    soc::Soc s(p);

    sim::Rng rng{3};
    for (std::uint32_t r = 0; r < rows; ++r)
        for (unsigned col = 0; col < 4; ++col)
            s.memory().store().store<std::uint32_t>(
                0x100000 + (mem::Addr(col) * rows + r) * 4,
                std::uint32_t(rng.next()));

    for (unsigned id = 0; id < 32; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            rt::DmsCtl ctl(c, s.dms());
            if (id == 0) {
                rt::PartitionJob job;
                job.table = 0x100000;
                job.nRows = rows;
                job.nCols = 4;
                job.colWidth = 4;
                job.colStride = rows * 4;
                job.scheme = scheme;
                job.dstBufBytes = 4096 + 4;
                rt::runPartition(ctl, job);
            }
            rt::consumePartition(
                ctl, 0, 4096 + 4, 2, 16,
                [&](std::uint32_t, std::uint32_t n) {
                    c.dualIssue(n, n); // cheap consumption
                });
            if (id == 0) {
                ctl.wfe(30);
                ctl.clearEvent(30);
            }
        });
    }
    sim::Tick t = s.run();
    return rows * 16.0 / (double(t) * 1e-12) / 1e9;
}

} // namespace

int
main(int argc, char **argv)
{
    sim::setVerbose(false);
    const bool smoke = bench::smokeRun(argc, argv);
    const std::uint32_t rows = smoke ? 50'000 : 200'000;
    bench::header("Figure 13", "DMS partitioning bandwidth, 32-way");

    rt::PartitionScheme hash;
    double gb_hash = run(hash, rows);

    rt::PartitionScheme radix;
    radix.kind = rt::PartitionScheme::Kind::RawRadix;
    radix.radixBits = 5;
    double gb_radix = run(radix, rows);

    rt::PartitionScheme range;
    range.kind = rt::PartitionScheme::Kind::Range;
    for (unsigned i = 0; i < 32; ++i)
        range.bounds.push_back(
            i == 31 ? ~0ull
                    : (std::uint64_t(i + 1) << 59) - 1);
    double gb_range = run(range, rows);

    bench::compare("hash (CRC32) partition", 9.3, gb_hash, "GB/s");
    bench::compare("radix (5 key bits) partition", 9.3, gb_radix,
                   "GB/s");
    bench::compare("range (32 bounds) partition", 9.3, gb_range,
                   "GB/s");
    bench::compare("HARP (prior accelerator, for reference)", 6.0,
                   gb_hash, "GB/s");

    // The 1024-way point: hardware 32-way + concurrent software
    // 32-way (the high-NDV group-by's phase A sustains it).
    apps::sql::GroupByConfig cfg;
    cfg.nRows = smoke ? 1 << 18 : 1 << 20;
    cfg.ndv = smoke ? 16 << 10 : 256 << 10;
    auto r = apps::sql::dpuGroupByHighNdv(soc::dpu40nm(), cfg);
    // Phase A is roughly half the total; report the whole-plan rate
    // as the conservative lower bound on the 1024-way rate.
    bench::row("  1024-way (hw x sw) sustained >= %.2f GB/s over the"
               " full two-phase plan (paper: 9 GB/s in phase A)",
               r.gbPerSec());
    return 0;
}

/**
 * @file
 * Multi-DPU board scaling bench. The paper deployed the chip as a
 * many-DPU in-memory database appliance (Section 6: "a single
 * board carries multiple DPUs behind one host"); this bench is the
 * repro of that posture on the simulated board fabric:
 *
 *  1. Sharded SQL partition/join scaling — the hash-partitioned
 *     table workload of board_apps.hh at 1, 2 and 4 DPUs. Work per
 *     DPU is fixed (weak scaling), so ideal aggregate throughput
 *     grows linearly with board size and every deviation is
 *     cross-DPU exchange cost on the modelled links. The run
 *     fails (non-zero exit) when the 2-DPU board does not beat
 *     1.6x or the 4-DPU board 2.5x of single-chip throughput.
 *  2. Distributed HLL — per-DPU sketches merged across the fabric,
 *     reported against the true distinct count.
 *  3. Board serving — the request mix flows through the sharded
 *     BoardScheduler (hash routing) on a 2-DPU board; reports
 *     board-wide tail latency and availability.
 *  4. Skew step (--skew-step, replacing the other sections) — a
 *     keyed stream on a 4-DPU board steps 90% of its traffic onto
 *     the partitions co-homed on one DPU a quarter of the way in.
 *     Static placement eats the hot spot; the board balancer
 *     (BoardParams::balance) re-homes partitions live over the
 *     real DMS descriptor + link-fabric path. Gates: >= 1.3x
 *     throughput recovery over static, at least one committed
 *     migration, and byte-identical migrated partition images.
 *
 * Output: human tables plus one JSON line (last line of stdout)
 * for CI artifact collection (BENCH_board.json;
 * BENCH_board_skew.json for --skew-step).
 */

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/report.hh"
#include "board/board.hh"
#include "board/board_apps.hh"
#include "host/board_offload.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

using namespace dpu;

namespace {

struct SqlPoint
{
    unsigned nDpus = 0;
    board::ShardedSqlResult res;
    double speedup = 0; ///< aggregate throughput vs 1 DPU
};

/** One sharded-SQL run on a fresh board (clean fault plane). */
board::ShardedSqlResult
sqlRun(unsigned n_dpus, const board::ShardedSqlConfig &cfg)
{
    sim::faultPlane().reset();
    board::BoardParams bp;
    bp.nDpus = n_dpus;
    board::Board b(bp);
    return board::runShardedSql(b, cfg);
}

double
wallNow()
{
    using clk = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clk::now().time_since_epoch())
        .count();
}

struct ParallelPoint
{
    unsigned threads = 1;
    double wallSec = 0;
    std::uint64_t epochs = 0;
    board::ShardedSqlResult res;
};

/** The 4-DPU SQL workload on @p threads worker threads, wall-timed.
 *  Simulated results are thread-count-invariant (the determinism
 *  tests pin that); only the wall clock moves. */
ParallelPoint
parallelRun(unsigned threads, const board::ShardedSqlConfig &cfg)
{
    sim::faultPlane().reset();
    board::BoardParams bp;
    bp.nDpus = 4;
    bp.threads = threads;
    board::Board b(bp);
    ParallelPoint pt;
    pt.threads = threads;
    const double t0 = wallNow();
    pt.res = board::runShardedSql(b, cfg);
    pt.wallSec = wallNow() - t0;
    pt.epochs = b.runnerStats().epochs;
    return pt;
}

/** True when `flag` appears verbatim on the command line. */
bool
flagSet(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    return false;
}

// ----------------------------------------------------------------
// 4. Skew step (--skew-step)
// ----------------------------------------------------------------

struct SkewRun
{
    host::ServingSummary sum;
    sim::Tick end = 0;
    board::BoardBalancer::Report rep; ///< zeroes on the static run
    std::uint64_t migrationBytes = 0;
    unsigned reassigned = 0;
    bool imagesIntact = true;
    std::uint64_t rejected = 0;
};

/** A fixed-cost serving job (lanes sleep ~20 us): capacity per DPU
 *  is then a pure function of the overheads, so the step's overload
 *  factor is deterministic. */
host::JobRequest
stepJob()
{
    host::JobRequest req;
    req.makeJob = [](const apps::ServingContext &) {
        apps::ServingJob job;
        job.stage = [] {};
        job.lane = [](core::DpCore &c, unsigned) {
            c.sleepCycles(16000); // 20 us at 800 MHz
        };
        return job;
    };
    return req;
}

/** One 4-DPU skew-step run. @p balanced turns the board balancer
 *  on; the offered keyed stream is identical either way. */
SkewRun
skewRun(bool balanced, unsigned threads, sim::Tick duration,
        unsigned n_jobs)
{
    sim::faultPlane().reset();
    const unsigned key_parts = 16;
    board::BoardParams bp;
    bp.nDpus = 4;
    bp.threads = threads;
    bp.balance.keyPartitions = key_parts;
    if (balanced) {
        bp.balance.window = sim::Tick(250'000'000); // 0.25 ms
        bp.balance.ewmaAlpha = 0.7;
        bp.balance.hotFactor = 1.1;
        bp.balance.maxMigrationsPerWindow = 2;
        bp.balance.minPartitionLoad = 2.0;
    }
    board::Board b(bp);
    host::OffloadParams op;
    op.nCores = 8; // the balancer's engine core stays unmanaged
    op.groupSize = 4;
    op.queueDepth = 1024; // the hot shard must queue, not reject
    host::BoardScheduler sched(b, op);

    // Hot keys: the partitions co-homed on one DPU, so the step
    // lands a partition group on one shard (the rack bench's
    // probe, one tier down). Key k < keyPartitions IS partition k.
    const unsigned hot_dpu = sched.partitions().homeOf(0, 4);
    std::vector<std::uint64_t> hot;
    for (unsigned p = 0; p < key_parts; ++p)
        if (sched.partitions().homeOf(p, 4) == hot_dpu)
            hot.push_back(p);
    sim_assert(!hot.empty(), "no partition co-homed on DPU %u",
               hot_dpu);

    // Pre-step the keys sweep every partition evenly; from the
    // step on, 90% of arrivals hammer the hot group.
    const sim::Tick step_at = duration / 4;
    const sim::Tick gap = duration / n_jobs;
    for (unsigned i = 0; i < n_jobs; ++i) {
        const sim::Tick at = sim::Tick(i) * gap;
        const bool hot_key = at >= step_at && i % 10 < 9;
        const std::uint64_t key =
            hot_key ? hot[i % hot.size()] : i % key_parts;
        sched.offer(at, key, stepJob());
    }
    SkewRun out;
    out.end = sched.run();
    out.sum = sched.summary();
    out.rejected = out.sum.rejected;
    out.migrationBytes = b.fabric().migrationBytes();
    out.reassigned = sched.partitions().reassignedCount();
    if (balanced) {
        const board::BoardBalancer &bal = *sched.balancer();
        out.rep = bal.report();
        for (unsigned p = 0; p < key_parts && out.imagesIntact;
             ++p) {
            const auto img = bal.stateImage(p);
            for (std::uint64_t i = 0; i < img.size(); ++i)
                if (img[i] !=
                    board::BoardBalancer::statePattern(p, i)) {
                    out.imagesIntact = false;
                    break;
                }
        }
    }
    sim::faultPlane().reset();
    return out;
}

/** The --skew-step entry point (runs instead of the other
 *  sections). */
int
skewMain(bool smoke, unsigned threads)
{
    const sim::Tick duration =
        smoke ? sim::Tick(3'000'000'000)     // 3 ms, 12 windows
              : sim::Tick(4'500'000'000);    // 4.5 ms, 18 windows
    const unsigned n_jobs = smoke ? 600 : 900; // ~200k jobs/s

    bench::header("board skew step",
                  "90% of keyed traffic onto one DPU's partitions "
                  "a quarter of the way in; static vs balanced");
    const SkewRun sstat = skewRun(false, threads, duration, n_jobs);
    const SkewRun sbal = skewRun(true, threads, duration, n_jobs);

    const double recovery =
        sstat.sum.throughputJobsPerSec > 0
            ? sbal.sum.throughputJobsPerSec /
                  sstat.sum.throughputJobsPerSec
            : 0;
    bench::row("  %9s %9s %10s %9s %9s %10s", "placement", "done",
               "jobs/s", "p99 us", "commits", "stateKB");
    bench::row("  %9s %9llu %10.3g %9.1f %9s %10s", "static",
               (unsigned long long)sstat.sum.completed,
               sstat.sum.throughputJobsPerSec, sstat.sum.p99Us,
               "-", "-");
    bench::row("  %9s %9llu %10.3g %9.1f %9llu %10llu", "balanced",
               (unsigned long long)sbal.sum.completed,
               sbal.sum.throughputJobsPerSec, sbal.sum.p99Us,
               (unsigned long long)sbal.rep.committed,
               (unsigned long long)(sbal.rep.stateBytes >> 10));
    bench::row("  recovery %.2fx throughput, p99 %.1f -> %.1f us, "
               "%llu forwarded deltas, %llu retries",
               recovery, sstat.sum.p99Us, sbal.sum.p99Us,
               (unsigned long long)sbal.rep.forwarded,
               (unsigned long long)sbal.rep.chunkRetries);

    bool ok = true;
    const double gate_recovery = 1.3;
    if (sbal.rep.committed == 0) {
        bench::row("  FAIL: the balancer committed no migrations");
        ok = false;
    }
    if (recovery < gate_recovery) {
        bench::row("  FAIL: skew recovery %.2fx < %.2fx gate",
                   recovery, gate_recovery);
        ok = false;
    }
    if (!sbal.imagesIntact) {
        bench::row("  FAIL: a migrated partition image diverged "
                   "from its seed pattern");
        ok = false;
    }
    if (sstat.sum.completed != n_jobs ||
        sbal.sum.completed != n_jobs) {
        bench::row("  FAIL: jobs lost (static %llu, balanced %llu "
                   "of %u)",
                   (unsigned long long)sstat.sum.completed,
                   (unsigned long long)sbal.sum.completed, n_jobs);
        ok = false;
    }

    {
        bench::Json j;
        j.field("bench", "board_skew");
        j.field("smoke", std::uint64_t(smoke));
        j.field("nDpus", std::uint64_t(4));
        j.field("jobs", std::uint64_t(n_jobs));
        j.field("staticJobsPerSec",
                sstat.sum.throughputJobsPerSec);
        j.field("balancedJobsPerSec",
                sbal.sum.throughputJobsPerSec);
        j.field("recovery", recovery);
        j.field("gateRecovery", gate_recovery);
        j.field("staticP99Us", sstat.sum.p99Us);
        j.field("balancedP99Us", sbal.sum.p99Us);
        j.field("migPlanned", sbal.rep.planned);
        j.field("migCommitted", sbal.rep.committed);
        j.field("migAborted", sbal.rep.aborted);
        j.field("chunkRetries", sbal.rep.chunkRetries);
        j.field("forwarded", sbal.rep.forwarded);
        j.field("deltaBytes", sbal.rep.deltaBytes);
        j.field("stateBytes", sbal.rep.stateBytes);
        j.field("migrationBytes", sbal.migrationBytes);
        j.field("reassigned", std::uint64_t(sbal.reassigned));
        j.field("imagesIntact",
                std::uint64_t(sbal.imagesIntact));
        j.field("pass", std::uint64_t(ok));
    }

    if (!ok) {
        std::fprintf(stderr, "bench_board: FAILED skew gates\n");
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = bench::smokeRun(argc, argv);
    if (flagSet(argc, argv, "--skew-step"))
        return skewMain(smoke,
                        unsigned(std::strtoul(
                            bench::argValue(argc, argv, "--threads",
                                            "2"),
                            nullptr, 0)));
    const char *faults =
        bench::argValue(argc, argv, "--faults", "");
    const std::uint64_t fault_seed = std::strtoull(
        bench::argValue(argc, argv, "--fault-seed", "1"), nullptr,
        0);

    board::ShardedSqlConfig scfg;
    scfg.rowsPerDpu = smoke ? (1u << 12) : (1u << 15);

    // ------------------------------------------------------------
    // 1. Sharded SQL scaling curve
    // ------------------------------------------------------------
    bench::header("board scaling",
                  "hash-partitioned SQL across 1/2/4 DPUs");
    bench::row("  %5s %10s %12s %10s %9s %8s", "dpus", "rows",
               "rows/s", "seconds", "linkPeak", "speedup");

    std::vector<SqlPoint> curve;
    bool ok = true;
    for (unsigned n : {1u, 2u, 4u}) {
        SqlPoint pt;
        pt.nDpus = n;
        pt.res = sqlRun(n, scfg);
        ok = ok && pt.res.valid;
        curve.push_back(pt);
    }
    const double base = curve.front().res.rowsPerSec();
    for (SqlPoint &pt : curve) {
        pt.speedup = base > 0 ? pt.res.rowsPerSec() / base : 0;
        bench::row("  %5u %10llu %12.3g %10.3g %8.1f%% %7.2fx",
                   pt.nDpus,
                   (unsigned long long)pt.res.rows,
                   pt.res.rowsPerSec(), pt.res.seconds,
                   pt.res.peakLinkUtilization * 100, pt.speedup);
    }
    // The scaling gates. Simulated time is deterministic, so these
    // are regression gates, not flaky thresholds.
    const double gate2 = 1.6, gate4 = 2.5;
    if (curve[1].speedup <= gate2) {
        bench::row("  FAIL: 2-DPU speedup %.2fx <= %.2fx gate",
                   curve[1].speedup, gate2);
        ok = false;
    }
    if (curve[2].speedup <= gate4) {
        bench::row("  FAIL: 4-DPU speedup %.2fx <= %.2fx gate",
                   curve[2].speedup, gate4);
        ok = false;
    }

    // Optional fault overlay: same 2-DPU workload under a seeded
    // link-fault schedule — must still validate (retries + doorbell
    // backfill), just slower.
    board::ShardedSqlResult faulted;
    bool ran_faulted = false;
    if (*faults) {
        sim::faultPlane().reset();
        sim::faultPlane().configure(faults, fault_seed);
        board::BoardParams bp;
        bp.nDpus = 2;
        board::Board fb(bp);
        faulted = board::runShardedSql(fb, scfg);
        sim::faultPlane().reset();
        ran_faulted = true;
        ok = ok && faulted.valid;
        bench::row("  under faults \"%s\": valid %d, %.3g rows/s, "
                   "%llu doorbells lost",
                   faults, int(faulted.valid),
                   faulted.rowsPerSec(),
                   (unsigned long long)faulted.doorbellsLost);
    }

    // ------------------------------------------------------------
    // 1b. Parallel epoch-runner wall-clock scaling
    // ------------------------------------------------------------
    const unsigned threads = unsigned(std::strtoul(
        bench::argValue(argc, argv, "--threads", "4"), nullptr, 0));
    const unsigned host_cores = std::thread::hardware_concurrency();
    bench::header("parallel scaling",
                  "4-DPU SQL wall time, serial vs --threads");

    // Best-of-N wall time: simulated work is identical, only the
    // machine is noisy.
    const unsigned wall_reps = smoke ? 1 : 3;
    auto bestWall = [&](unsigned t) {
        ParallelPoint best;
        for (unsigned i = 0; i < wall_reps; ++i) {
            ParallelPoint cur = parallelRun(t, scfg);
            if (i == 0 || cur.wallSec < best.wallSec)
                best = cur;
        }
        return best;
    };
    const ParallelPoint serial = bestWall(1);
    const ParallelPoint par = bestWall(threads);
    ok = ok && serial.res.valid && par.res.valid;
    const double wall_speedup =
        par.wallSec > 0 ? serial.wallSec / par.wallSec : 0;
    bench::row("  %7s %10s %10s %8s", "threads", "wall s", "epochs",
               "speedup");
    bench::row("  %7u %10.3g %10llu %7.2fx", 1u, serial.wallSec,
               (unsigned long long)serial.epochs, 1.0);
    bench::row("  %7u %10.3g %10llu %7.2fx", threads, par.wallSec,
               (unsigned long long)par.epochs, wall_speedup);
    // The CI floor: >= 2.0x at 4 threads — enforced only where the
    // host actually has the cores to show it (a 1-core runner can
    // only measure overhead, so there it reports without gating).
    const double wall_gate = 2.0;
    const bool gate_enforced = threads >= 4 && host_cores >= 4;
    if (gate_enforced && wall_speedup < wall_gate) {
        bench::row("  FAIL: wall speedup %.2fx < %.2fx gate "
                   "(%u host cores)",
                   wall_speedup, wall_gate, host_cores);
        ok = false;
    }
    if (!gate_enforced)
        bench::row("  (gate not enforced: %u host cores, "
                   "%u threads requested)",
                   host_cores, threads);

    // ------------------------------------------------------------
    // 2. Distributed HLL
    // ------------------------------------------------------------
    bench::header("board HLL",
                  "cross-DPU sketch merge (2 DPUs)");
    board::DistHllConfig hcfg;
    if (smoke) {
        hcfg.elementsPerDpu = 1 << 12;
        hcfg.cardinality = 1 << 10;
    }
    sim::faultPlane().reset();
    board::BoardParams hbp;
    hbp.nDpus = 2;
    board::Board hb(hbp);
    const board::DistHllResult hll =
        board::runDistributedHll(hb, hcfg);
    ok = ok && hll.valid;
    bench::row("  estimate %.0f  true %llu  err %.2f%%  "
               "sketchExact %d  %.3g s",
               hll.estimate, (unsigned long long)hll.trueDistinct,
               hll.errorFrac * 100, int(hll.sketchExact),
               hll.seconds);

    // ------------------------------------------------------------
    // 3. Serving through the sharded scheduler
    // ------------------------------------------------------------
    bench::header("board serving",
                  "hash-routed request mix (2 DPUs)");
    sim::faultPlane().reset();
    board::BoardParams sbp;
    sbp.nDpus = 2;
    board::Board sb(sbp);
    host::OffloadParams op;
    host::BoardScheduler bsched(sb, op, host::ShardRouting::Hash);

    const unsigned n_jobs = smoke ? 16 : 48;
    const double rate = 4000;
    sim::Rng rng(0x0b0a7d);
    sim::Tick t = 0;
    const char *mix[] = {"filter", "groupby-low", "hll-crc",
                         "json"};
    std::vector<std::uint64_t> per_shard(sb.nDpus(), 0);
    for (unsigned i = 0; i < n_jobs; ++i) {
        host::JobRequest req;
        const apps::AppSpec *spec =
            apps::findApp(mix[rng.below(4)]);
        sim_assert(spec, "mix app missing from registry");
        req.app = spec->name;
        req.cfg = spec->makeConfig();
        if (req.app == "filter")
            spec->set(req.cfg, "rowsPerCore", "4096");
        if (req.app == "groupby-low")
            spec->set(req.cfg, "nRows", "16384");
        if (req.app == "hll-crc") {
            spec->set(req.cfg, "nElements", "8192");
            spec->set(req.cfg, "cardinality", "2048");
        }
        if (req.app == "json")
            spec->set(req.cfg, "nRecords", "512");
        req.seed = rng.next();
        const double gap_s = rng.uniform() / rate;
        t += sim::Tick(gap_s * 1e12);
        ++per_shard[bsched.route(req)];
        bsched.enqueueAt(t, std::move(req));
    }
    bsched.start();
    sb.run();
    bench::flushTrace();
    const host::ServingSummary sum = bsched.summary();
    ok = ok && sum.completed > 0 && sum.timedOut == 0 &&
         sum.validationFailed == 0;
    bench::row("  shard split: dpu0 %llu, dpu1 %llu of %u jobs",
               (unsigned long long)per_shard[0],
               (unsigned long long)per_shard[1], n_jobs);
    for (unsigned d = 0; d < sb.nDpus(); ++d)
        for (const host::JobRecord &r : bsched.shard(d).jobs())
            if (r.state == host::JobState::Completed && !r.valid)
                bench::row("  INVALID: dpu%u job %llu app %s", d,
                           (unsigned long long)r.id,
                           r.app.c_str());
    bench::row("  completed %llu  timedOut %llu  "
               "validationFailed %llu  rejected %llu",
               (unsigned long long)sum.completed,
               (unsigned long long)sum.timedOut,
               (unsigned long long)sum.validationFailed,
               (unsigned long long)sum.rejected);
    bench::row("  p50 %.1f us  p99 %.1f us  availability %.3f  "
               "%.3g jobs/s",
               sum.p50Us, sum.p99Us, sum.availability,
               sum.throughputJobsPerSec);

    // ------------------------------------------------------------
    // JSON (last line of stdout)
    // ------------------------------------------------------------
    {
        bench::Json j;
        j.field("bench", "board");
        j.field("smoke", std::uint64_t(smoke));
        j.arr("sqlScaling");
        for (const SqlPoint &pt : curve) {
            j.elem();
            j.field("nDpus", std::uint64_t(pt.nDpus));
            j.field("rows", pt.res.rows);
            j.field("rowsPerSec", pt.res.rowsPerSec());
            j.field("seconds", pt.res.seconds);
            j.field("bytesShipped", pt.res.bytesShipped);
            j.field("peakLinkUtilization",
                    pt.res.peakLinkUtilization);
            j.field("speedup", pt.speedup);
            j.field("valid", std::uint64_t(pt.res.valid));
            j.end();
        }
        j.end();
        j.field("gate2", gate2).field("gate4", gate4);
        j.obj("parallelScaling");
        j.field("threads", std::uint64_t(threads));
        j.field("hostCores", std::uint64_t(host_cores));
        j.field("wallSecSerial", serial.wallSec);
        j.field("wallSecParallel", par.wallSec);
        j.field("wallSpeedup", wall_speedup);
        j.field("epochs", par.epochs);
        j.field("gate", wall_gate);
        j.field("gateEnforced", std::uint64_t(gate_enforced));
        j.end();
        if (ran_faulted) {
            j.obj("sqlFaulted");
            j.field("spec", faults);
            j.field("valid", std::uint64_t(faulted.valid));
            j.field("rowsPerSec", faulted.rowsPerSec());
            j.field("doorbellsLost", faulted.doorbellsLost);
            j.end();
        }
        j.obj("hll");
        j.field("estimate", hll.estimate);
        j.field("trueDistinct", hll.trueDistinct);
        j.field("errorFrac", hll.errorFrac);
        j.field("sketchExact", std::uint64_t(hll.sketchExact));
        j.field("valid", std::uint64_t(hll.valid));
        j.end();
        j.obj("serving");
        j.field("nDpus", std::uint64_t(2));
        j.field("jobs", std::uint64_t(n_jobs));
        j.field("completed", sum.completed);
        j.field("timedOut", sum.timedOut);
        j.field("p50Us", sum.p50Us);
        j.field("p99Us", sum.p99Us);
        j.field("availability", sum.availability);
        j.field("jobsPerSec", sum.throughputJobsPerSec);
        j.end();
        j.field("pass", std::uint64_t(ok));
    }

    if (!ok) {
        std::fprintf(stderr, "bench_board: FAILED gates\n");
        return 1;
    }
    return 0;
}

/**
 * @file
 * Figure 16: TPCH-like query performance/watt gains over the x86
 * baseline (Section 5.3). Each query's DPU pipeline uses hardware
 * partitioning for distribution and joins; the geometric mean is
 * reported against the paper's overall 15x (which was measured
 * against a commercial columnar engine — our hand-written baseline
 * flatters the Xeon, so our geomean is conservative).
 */

#include <cmath>

#include "apps/sql/tpch.hh"
#include "bench/report.hh"

using namespace dpu;
using namespace dpu::apps;
using namespace dpu::apps::sql;

int
main()
{
    sim::setVerbose(false);
    bench::header("Figure 16", "TPCH query perf/watt gains");

    TpchConfig cfg;
    cfg.scale = 2.0;

    bench::row("  %-6s %6s %10s %10s %8s", "query", "ok",
               "dpu (us)", "xeon (us)", "gain x");
    double log_sum = 0;
    for (const char *q : tpchQueries) {
        AppResult r = tpchApp(cfg, q);
        bench::row("  %-6s %6s %10.1f %10.1f %8.2f", q,
                   r.matched ? "yes" : "NO", r.dpuSeconds * 1e6,
                   r.xeonSeconds * 1e6, r.gain());
        log_sum += std::log(r.gain());
    }
    double geomean = std::exp(log_sum / 5);
    bench::compare("geometric mean (paper: commercial engine)", 15.0,
                   geomean, "x");
    bench::row("  join-heavy queries gain most (DMEM-resident"
               " co-partitioned tables); scans track the"
               " bandwidth-per-watt ratio.");
    return 0;
}

/**
 * @file
 * Section 2.5 ablation: the 16 nm process shrink (five 32-core
 * complexes, 160 dpCores, 76 GB/s DDR4-class memory, 12 W) against
 * the fabricated 40 nm part. The paper claims the shrink is 2.5x
 * more efficient in performance/watt ("with a 5x increase in
 * compute and memory bandwidth, each DPU becomes 2.5x more
 * efficient"). Measured on the bandwidth-bound filter primitive and
 * on group-by.
 */

#include "apps/json.hh"
#include "apps/sql/filter.hh"
#include "bench/report.hh"

using namespace dpu;
using namespace dpu::apps::sql;

int
main(int argc, char **argv)
{
    sim::setVerbose(false);
    const bool smoke = bench::smokeRun(argc, argv);
    bench::header("Section 2.5", "16 nm shrink vs 40 nm (perf/watt)");

    // Filter: bandwidth bound on both configs.
    FilterConfig fcfg;
    fcfg.rowsPerCore = smoke ? 32 << 10 : 128 << 10;
    fcfg.nCores = 32;
    FilterResult f40 = dpuFilter(soc::dpu40nm(), fcfg);
    FilterConfig fcfg16 = fcfg;
    fcfg16.nCores = 160;
    FilterResult f16 = dpuFilter(soc::dpu16nm(), fcfg16);

    double f40_ppw = f40.gbPerSec() / 6.0;
    double f16_ppw = f16.gbPerSec() / 12.0;
    bench::row("  filter: 40nm %6.2f GB/s @6W   16nm %6.2f GB/s"
               " @12W", f40.gbPerSec(), f16.gbPerSec());
    bench::compare("filter perf/watt improvement", 2.5,
                   f16_ppw / f40_ppw, "x");

    // JSON parsing: compute bound, so the shrink's benefit is the
    // 5x core count at 2x power — the paper's 2.5x exactly.
    apps::JsonConfig j;
    j.nRecords = smoke ? 8 << 10 : 48 << 10;
    apps::JsonResult j40 = apps::dpuJson(soc::dpu40nm(), j);
    apps::JsonConfig j16 = j;
    j16.nCores = 160;
    apps::JsonResult j16r = apps::dpuJson(soc::dpu16nm(), j16);
    double j_ratio = (j16r.gbPerSec() / 12.0) /
                     (j40.gbPerSec() / 6.0);
    bench::row("  JSON: 40nm %6.2f GB/s @6W   16nm %6.2f GB/s @12W",
               j40.gbPerSec(), j16r.gbPerSec());
    bench::compare("JSON (compute-bound) perf/watt", 2.5, j_ratio,
                   "x");
    return 0;
}

/**
 * @file
 * Simulator-throughput benchmark: simulated-ticks-per-wall-second
 * (and events-per-wall-second) for event-kernel-bound workloads.
 *
 * This is not a paper figure: it measures the SIMULATOR, not the
 * modelled chip, so that event-kernel regressions fail loudly and
 * speedups are measured rather than asserted. Three workloads with
 * very different scheduling mixes:
 *
 *   kernel   — raw EventQueue chains (no SoC): pure scheduling
 *              overhead, near/far deltas exercising both the timing
 *              wheel and the overflow heap.
 *   fig02    — the Figure 2 ATE ping-pong: every RPC is a chain of
 *              queue events plus two fiber switches.
 *   listing1 — the Listing 1 DDR->DMEM ping-pong stream: DMAD/DMAC
 *              descriptor events interleaved with core wakeups.
 *
 * Output ends with one machine-readable JSON line (PR 2 report
 * format). `--floor <ticks/s>` exits non-zero when the slowest
 * SoC workload underruns the floor — CI pins a conservative floor
 * so an order-of-magnitude event-kernel regression fails the job
 * while machine-to-machine variance does not.
 */

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include <memory>
#include <thread>

#include "bench/report.hh"
#include "rt/dms_ctl.hh"
#include "sim/parallel.hh"
#include "sim/rng.hh"
#include "soc/soc.hh"

using namespace dpu;

namespace {

struct Result
{
    std::string name;
    sim::Tick simTicks = 0;
    double wallSec = 0;
    std::uint64_t events = 0;

    double ticksPerSec() const
    {
        return wallSec > 0 ? double(simTicks) / wallSec : 0;
    }
    double eventsPerSec() const
    {
        return wallSec > 0 ? double(events) / wallSec : 0;
    }
};

double
wallNow()
{
    using clk = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clk::now().time_since_epoch())
        .count();
}

/**
 * Raw event-kernel storm: @p chains self-rescheduling events with a
 * deterministic near/far delta mix (7/8 within a few dpCore cycles,
 * 1/8 far enough to land beyond a near-horizon wheel), until
 * @p total events have executed.
 */
Result
runKernel(std::uint64_t total, unsigned chains)
{
    sim::EventQueue eq;
    sim::Rng rng(7);
    std::uint64_t executed = 0;
    // Per-chain deterministic delta stream, fixed up front so the
    // workload is identical run to run.
    std::vector<std::uint64_t> seeds(chains);
    for (auto &s : seeds)
        s = rng.next();

    struct Chain
    {
        sim::EventQueue &eq;
        std::uint64_t &executed;
        std::uint64_t total;
        sim::Rng rng;

        void
        fire()
        {
            if (++executed >= total)
                return;
            std::uint64_t r = rng.next();
            // Mostly cycle-scale deltas; every 8th hop jumps ~84 us
            // to stress far-future insertion paths.
            sim::Tick delta = (r & 7) == 0
                                  ? (r >> 8) % 100'000'000
                                  : (r >> 8) % 20'000;
            eq.scheduleIn(delta, [this] { fire(); });
        }
    };

    std::vector<Chain> cs;
    cs.reserve(chains);
    for (unsigned i = 0; i < chains; ++i)
        cs.push_back(Chain{eq, executed, total, sim::Rng(seeds[i])});

    const double t0 = wallNow();
    for (auto &c : cs)
        c.fire();
    eq.run();
    const double wall = wallNow() - t0;
    return {"kernel", eq.now(), wall, executed};
}

/** Figure 2 workload: far-macro hardware-load ping-pong. */
Result
runFig02(unsigned iters)
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 8 << 20;
    soc::Soc s(p);
    s.start(0, [&s, iters](core::DpCore &c) {
        for (unsigned i = 0; i < iters; ++i)
            s.ate().remoteLoad(c, 31, mem::dmemAddr(31, 0), 8);
    });
    const double t0 = wallNow();
    s.run();
    const double wall = wallNow() - t0;
    Result r{"fig02", s.now(), wall,
             s.eventQueue().profile().totalExecuted()};
    return r;
}

/**
 * Listing 1 workload: stream @p bufs KB-buffers from DDR through a
 * two-buffer DMEM ping-pong, consuming each word on the core.
 */
Result
runListing1(unsigned bufs)
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = std::max<std::uint64_t>(8 << 20,
                                         std::uint64_t(bufs) * 1024);
    soc::Soc s(p);
    const std::uint32_t total = bufs * 1024;
    for (std::uint32_t i = 0; i < total / 4; ++i)
        s.memory().store().store<std::uint32_t>(i * 4,
                                                i * 0x9e3779b9u);
    std::uint64_t sum = 0;
    s.start(0, [&s, &sum, bufs](core::DpCore &c) {
        rt::DmsCtl ctl(c, s.dms());
        auto d0 = ctl.setupDdrToDmem(256, 4, 0, 0, 0);
        auto d1 = ctl.setupDdrToDmem(256, 4, 0, 1024, 1);
        auto loop = ctl.setupLoop(d0, std::uint16_t(bufs / 2 - 1));
        ctl.push(d0);
        ctl.push(d1);
        ctl.push(loop);
        unsigned buf = 0;
        for (std::uint32_t count = 0; count < bufs; ++count) {
            ctl.wfe(buf);
            std::uint32_t base = buf ? 1024u : 0u;
            for (std::uint32_t i = 0; i < 256; ++i)
                sum += c.dmem().load<std::uint32_t>(base + i * 4);
            c.dualIssue(256, 256);
            ctl.clearEvent(buf);
            buf = 1 - buf;
        }
    });
    const double t0 = wallNow();
    s.run();
    const double wall = wallNow() - t0;
    if (!s.allFinished())
        std::exit(2); // self-check: the stream must complete
    Result r{"listing1", s.now(), wall,
             s.eventQueue().profile().totalExecuted()};
    (void)sum;
    return r;
}

/**
 * The kernel storm sharded over 4 queue partitions driven by the
 * EpochRunner at @p threads workers (lookahead = the board link's
 * 600 ns) — measures the parallel event kernel itself, free of chip
 * model weight. Identical simulated work at every thread count.
 */
Result
runParallelKernel(std::uint64_t total_per_part, unsigned chains,
                  unsigned threads)
{
    constexpr unsigned parts = 4;
    std::vector<std::unique_ptr<sim::EventQueue>> qs;
    std::vector<sim::EventQueue *> qp;
    for (unsigned d = 0; d < parts; ++d) {
        qs.push_back(std::make_unique<sim::EventQueue>());
        qp.push_back(qs.back().get());
    }

    struct Chain
    {
        sim::EventQueue &eq;
        std::uint64_t &executed;
        std::uint64_t total;
        sim::Rng rng;

        void
        fire()
        {
            if (++executed >= total)
                return;
            // Cycle-scale deltas only: many events per 600 ns epoch
            // window, the shape parallelism pays off on.
            eq.scheduleIn((rng.next() >> 8) % 20'000,
                          [this] { fire(); });
        }
    };

    std::vector<std::uint64_t> executed(parts, 0);
    std::vector<std::unique_ptr<Chain>> cs;
    sim::Rng seeds(7);
    for (unsigned d = 0; d < parts; ++d)
        for (unsigned i = 0; i < chains; ++i)
            cs.push_back(std::make_unique<Chain>(Chain{
                *qs[d], executed[d], total_per_part,
                sim::Rng(seeds.next())}));

    sim::ParallelParams pp;
    pp.threads = threads;
    pp.lookahead = 600'000;
    sim::EpochRunner runner(qp, pp, [](unsigned) {});

    const double t0 = wallNow();
    for (auto &c : cs)
        c->fire();
    const sim::Tick end = runner.run();
    const double wall = wallNow() - t0;
    std::uint64_t events = 0;
    for (std::uint64_t e : executed)
        events += e;
    return {"kernel4x" + std::to_string(threads), end, wall, events};
}

} // namespace

int
main(int argc, char **argv)
{
    sim::setVerbose(false);
    const bool smoke = bench::smokeRun(argc, argv);
    const double floor =
        std::atof(bench::argValue(argc, argv, "--floor", "0"));
    const unsigned repeat = smoke ? 1 : 3;

    bench::header("simperf",
                  "simulated-ticks-per-wall-second (simulator "
                  "throughput, not a paper figure)");
    bench::row("  %-10s %16s %16s %14s", "workload", "sim ticks",
               "ticks/wall-s", "Mevents/s");

    // Best-of-N wall time: the sim is deterministic, the machine is
    // not; max throughput is the least noisy estimator.
    auto best = [&](auto &&fn) {
        Result r;
        for (unsigned i = 0; i < repeat; ++i) {
            Result cur = fn();
            if (i == 0 || cur.wallSec < r.wallSec)
                r = cur;
        }
        return r;
    };

    std::vector<Result> results;
    results.push_back(best([&] {
        return runKernel(smoke ? 200'000 : 4'000'000, 64);
    }));
    results.push_back(
        best([&] { return runFig02(smoke ? 2'000 : 400'000); }));
    results.push_back(
        best([&] { return runListing1(smoke ? 512 : 65'536); }));

    double worstSoc = 0;
    for (const Result &r : results) {
        bench::row("  %-10s %16llu %16.3g %14.2f", r.name.c_str(),
                   (unsigned long long)r.simTicks, r.ticksPerSec(),
                   r.eventsPerSec() / 1e6);
        if (r.name != "kernel") {
            if (worstSoc == 0 || r.ticksPerSec() < worstSoc)
                worstSoc = r.ticksPerSec();
        }
    }

    // ------------------------------------------------------------
    // Parallel kernel scaling: 4 partitions, serial vs --threads
    // ------------------------------------------------------------
    const unsigned threads = unsigned(std::strtoul(
        bench::argValue(argc, argv, "--threads", "4"), nullptr, 0));
    const unsigned host_cores = std::thread::hardware_concurrency();
    const std::uint64_t per_part = smoke ? 100'000 : 1'000'000;
    bench::header("parallel kernel",
                  "4-partition epoch runner, serial vs --threads");
    const Result pserial =
        best([&] { return runParallelKernel(per_part, 16, 1); });
    const Result ppar =
        best([&] { return runParallelKernel(per_part, 16, threads); });
    const double pspeedup =
        ppar.wallSec > 0 ? pserial.wallSec / ppar.wallSec : 0;
    bench::row("  %-10s %16llu %16.3g %14.2f",
               pserial.name.c_str(),
               (unsigned long long)pserial.simTicks,
               pserial.ticksPerSec(), pserial.eventsPerSec() / 1e6);
    bench::row("  %-10s %16llu %16.3g %14.2f  (%.2fx, %u cores)",
               ppar.name.c_str(),
               (unsigned long long)ppar.simTicks,
               ppar.ticksPerSec(), ppar.eventsPerSec() / 1e6,
               pspeedup, host_cores);

    {
        bench::Json j;
        j.field("bench", "simperf")
            .field("smoke", std::uint64_t(smoke ? 1 : 0));
        j.arr("workloads");
        for (const Result &r : results)
            j.elem()
                .field("name", r.name)
                .field("simTicks", r.simTicks)
                .field("wallSec", r.wallSec)
                .field("ticksPerWallSec", r.ticksPerSec())
                .field("eventsExecuted", r.events)
                .field("eventsPerWallSec", r.eventsPerSec())
                .end();
        j.end();
        j.field("worstSocTicksPerWallSec", worstSoc);
        j.obj("parallelKernel");
        j.field("threads", std::uint64_t(threads));
        j.field("hostCores", std::uint64_t(host_cores));
        j.field("wallSecSerial", pserial.wallSec);
        j.field("wallSecParallel", ppar.wallSec);
        j.field("wallSpeedup", pspeedup);
        j.field("eventsPerWallSecParallel", ppar.eventsPerSec());
        j.end();
    }

    if (floor > 0 && worstSoc < floor) {
        std::fprintf(stderr,
                     "simperf: worst SoC workload %.3g ticks/s "
                     "under floor %.3g\n",
                     worstSoc, floor);
        return 1;
    }
    return 0;
}

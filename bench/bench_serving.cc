/**
 * @file
 * Serving bench: the Section 2.4 deployment model under load. An
 * open-loop (Poisson arrivals at --rate jobs/s) or closed-loop
 * (--closed N outstanding) stream of mixed app requests flows
 * through the host offload scheduler: the A9 admits each request,
 * dispatches it to an idle 4-core group over MBC pointer messages,
 * and collects completion acks. Reports per-request latency
 * percentiles and sustained throughput, as a table and as a JSON
 * object (the last stdout line) for machine consumption.
 *
 * This is not a paper figure: the paper reports per-app gains
 * (Figure 14) but deployed the chip as a many-DPU database
 * appliance; this bench is the repro of that serving posture.
 */

#include <cmath>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench/report.hh"
#include "host/offload.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "soc/soc.hh"

using namespace dpu;

namespace {

/** One slot of the request mix: app, weight, request sizing. */
struct MixEntry
{
    const char *app;
    double weight;
    std::initializer_list<
        std::pair<std::string_view, std::string_view>>
        opts;
};

/**
 * A database-appliance-flavoured mix: mostly scan/aggregate SQL
 * operators, some analytics, a trickle of heavy vision work. Sizes
 * are per-request (one 4-core group), not per-chip — they must fit
 * the group's DMEM working set and finish well inside the 50 ms
 * default deadline.
 */
const MixEntry servingMix[] = {
    {"filter", 0.30, {{"rowsPerCore", "16384"}}},
    {"groupby-low", 0.20, {{"nRows", "65536"}, {"ndv", "512"}}},
    {"hll-crc",
     0.15,
     {{"nElements", "32768"}, {"cardinality", "8192"},
      {"pBits", "12"}}},
    {"json", 0.15, {{"nRecords", "2048"}}},
    {"svm", 0.10, {{"nTest", "8192"}, {"dims", "64"}}},
    {"simsearch",
     0.05,
     {{"nDocs", "1024"}, {"vocab", "2048"}, {"nQueries", "1"}}},
    {"disparity",
     0.05,
     {{"width", "64"}, {"height", "32"}, {"maxShift", "8"}}},
};

const char *
stateName(host::JobState st)
{
    switch (st) {
    case host::JobState::Queued: return "queued";
    case host::JobState::Running: return "running";
    case host::JobState::Completed: return "completed";
    case host::JobState::TimedOut: return "timedOut";
    case host::JobState::Rejected: return "rejected";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    sim::setVerbose(false);
    const bool smoke = bench::smokeRun(argc, argv);
    const double rate =
        std::atof(bench::argValue(argc, argv, "--rate", "4000"));
    const unsigned n_jobs = unsigned(std::atoi(bench::argValue(
        argc, argv, "--jobs", smoke ? "32" : "512")));
    const unsigned closed = unsigned(
        std::atoi(bench::argValue(argc, argv, "--closed", "0")));
    const unsigned wedge = unsigned(
        std::atoi(bench::argValue(argc, argv, "--wedge", "0")));
    const std::uint64_t seed = std::strtoull(
        bench::argValue(argc, argv, "--seed", "7"), nullptr, 10);

    bench::header("Serving",
                  "offload scheduler under mixed-app load");

    soc::Soc s;
    soc::HostA9 a9(s.eventQueue(), s.mbc());
    host::OffloadParams op;
    host::OffloadScheduler sched(s, a9, op);

    double total_weight = 0;
    for (const MixEntry &m : servingMix)
        total_weight += m.weight;

    sim::Rng rng(seed);
    auto makeReq = [&]() {
        double u = rng.uniform() * total_weight;
        const MixEntry *pick = std::end(servingMix) - 1;
        for (const MixEntry &m : servingMix) {
            if (u < m.weight) {
                pick = &m;
                break;
            }
            u -= m.weight;
        }
        const apps::AppSpec *spec = apps::findApp(pick->app);
        sim_assert(spec, "mix names unknown app \"%s\"", pick->app);
        apps::ConfigHandle cfg = spec->makeConfig();
        for (const auto &[k, v] : pick->opts)
            sim_assert(spec->set(cfg, k, v),
                       "bad option %.*s for %s", int(k.size()),
                       k.data(), pick->app);
        host::JobRequest req;
        req.app = pick->app;
        req.cfg = std::move(cfg);
        req.seed = rng.next();
        return req;
    };

    // Fault injection: --wedge N plants jobs whose lane 0 never
    // sets its completion event. Each must be reaped as a timeout
    // (costing its group) while the rest of the load drains.
    auto makeWedged = [&]() {
        host::JobRequest req;
        req.app = "wedged";
        req.timeout = sim::Tick(2e9); // 2 ms
        req.makeJob = [](const apps::ServingContext &) {
            apps::ServingJob job;
            job.stage = [] {};
            job.lane = [](core::DpCore &c, unsigned lane) {
                if (lane == 0)
                    c.blockUntil([] { return false; });
                c.alu(16);
            };
            return job;
        };
        return req;
    };

    unsigned issued = 0;
    if (closed > 0) {
        // Closed loop: keep `closed` requests outstanding until
        // n_jobs have been issued (each completion resubmits).
        for (unsigned i = 0; i < closed && issued < n_jobs; ++i) {
            sched.enqueueAt(0, makeReq());
            ++issued;
        }
        sched.onComplete([&](const host::JobRecord &) {
            if (issued < n_jobs) {
                ++issued;
                (void)sched.submitNow(makeReq());
            }
        });
    } else {
        // Open loop: Poisson arrivals, rate jobs/s, oblivious to
        // completions (the queue absorbs or rejects bursts).
        sim_assert(rate > 0, "open-loop needs --rate > 0");
        sim::Tick t = 0;
        for (unsigned i = 0; i < n_jobs; ++i) {
            const double gap_s =
                -std::log(1.0 - rng.uniform()) / rate;
            t += sim::Tick(gap_s * 1e12);
            sched.enqueueAt(t, makeReq());
            ++issued;
        }
        for (unsigned i = 0; i < wedge; ++i) {
            sched.enqueueAt(t * (i + 1) / (wedge + 1) + 1,
                            makeWedged());
            ++issued;
        }
    }
    if (closed > 0)
        for (unsigned i = 0; i < wedge; ++i) {
            sched.enqueueAt(0, makeWedged());
            ++issued;
        }

    sched.start();
    s.run();
    bench::flushTrace();

    const host::ServingSummary sum = sched.summary();

    // Steady-state window: drop the first and last 10% of
    // completions (warm-up ramp and tail drain).
    std::vector<double> window;
    {
        std::vector<const host::JobRecord *> done;
        for (const host::JobRecord &r : sched.jobs())
            if (r.state == host::JobState::Completed)
                done.push_back(&r);
        const std::size_t skip = done.size() / 10;
        for (std::size_t i = skip;
             i + skip < done.size(); ++i)
            window.push_back(done[i]->latencyUs());
        std::sort(window.begin(), window.end());
    }
    auto pct = [&](double q) {
        if (window.empty())
            return 0.0;
        std::size_t rank =
            std::size_t(q * double(window.size()) + 0.5);
        if (rank > 0)
            --rank;
        return window[std::min(rank, window.size() - 1)];
    };

    // Per-app completion counts and mean latency.
    struct AppAgg
    {
        std::uint64_t n = 0;
        double sumUs = 0;
    };
    std::map<std::string, AppAgg> perApp;
    for (const host::JobRecord &r : sched.jobs())
        if (r.state == host::JobState::Completed) {
            AppAgg &a = perApp[r.app];
            ++a.n;
            a.sumUs += r.latencyUs();
        }

    bench::row("  load: %s, %u jobs, %u groups of %u cores",
               closed ? "closed-loop" : "open-loop", issued,
               sched.nGroups(), op.groupSize);
    bench::row("  %-14s %8s %12s", "app", "done", "mean us");
    for (const auto &[name, agg] : perApp)
        bench::row("  %-14s %8llu %12.1f", name.c_str(),
                   (unsigned long long)agg.n,
                   agg.n ? agg.sumUs / double(agg.n) : 0.0);
    bench::row(
        "  completed %llu  timedOut %llu  rejected %llu  "
        "validationFailed %llu",
        (unsigned long long)sum.completed,
        (unsigned long long)sum.timedOut,
        (unsigned long long)sum.rejected,
        (unsigned long long)sum.validationFailed);
    bench::row("  latency us: p50 %.1f  p95 %.1f  p99 %.1f  "
               "mean %.1f  max %.1f",
               sum.p50Us, sum.p95Us, sum.p99Us, sum.meanUs,
               sum.maxUs);
    bench::row("  steady-state us: p50 %.1f  p95 %.1f  p99 %.1f",
               pct(0.50), pct(0.95), pct(0.99));
    bench::row("  throughput: %.0f jobs/s", sum.throughputJobsPerSec);

    // Machine-readable report (last line of stdout).
    {
        bench::Json j;
        j.field("bench", "serving")
            .field("mode", closed ? "closed" : "open")
            .field("rateJobsPerSec", closed ? 0.0 : rate)
            .field("jobs", std::uint64_t(issued))
            .field("groups", std::uint64_t(sched.nGroups()))
            .field("groupSize", std::uint64_t(op.groupSize));
        j.obj("counts")
            .field("submitted", sum.submitted)
            .field("accepted", sum.accepted)
            .field("rejected", sum.rejected)
            .field("completed", sum.completed)
            .field("timedOut", sum.timedOut)
            .field("validationFailed", sum.validationFailed)
            .field("lateJobs", sum.lateJobs)
            .field("wedgedGroups", sum.wedgedGroups)
            .end();
        j.obj("latencyUs")
            .field("p50", sum.p50Us)
            .field("p95", sum.p95Us)
            .field("p99", sum.p99Us)
            .field("mean", sum.meanUs)
            .field("max", sum.maxUs)
            .end();
        j.obj("steadyStateUs")
            .field("p50", pct(0.50))
            .field("p95", pct(0.95))
            .field("p99", pct(0.99))
            .end();
        j.field("throughputJobsPerSec", sum.throughputJobsPerSec);
        j.arr("apps");
        for (const auto &[name, agg] : perApp)
            j.elem()
                .field("name", name)
                .field("completed", agg.n)
                .field("meanUs",
                       agg.n ? agg.sumUs / double(agg.n) : 0.0)
                .end();
        j.end();
    }

    // Functional gate for CI: everything submitted must resolve,
    // nothing may fail validation, every injected wedge must be
    // reaped as a timeout, and the queue must still have drained.
    if (sum.completed + sum.timedOut + sum.rejected !=
            sum.submitted ||
        sum.validationFailed != 0 || sum.completed == 0 ||
        sum.timedOut < wedge) {
        std::fprintf(stderr, "serving bench failed its gates\n");
        return 1;
    }
    for (const host::JobRecord &r : sched.jobs())
        if (r.state == host::JobState::Queued ||
            r.state == host::JobState::Running) {
            std::fprintf(stderr, "job %llu left %s\n",
                         (unsigned long long)r.id,
                         stateName(r.state));
            return 1;
        }
    return 0;
}

/**
 * @file
 * Serving bench: the Section 2.4 deployment model under load. An
 * open-loop (Poisson arrivals at --rate jobs/s) or closed-loop
 * (--closed N outstanding) stream of mixed app requests flows
 * through the host offload scheduler: the A9 admits each request,
 * dispatches it to an idle 4-core group over MBC pointer messages,
 * and collects completion acks. Reports per-request latency
 * percentiles and sustained throughput, as a table and as a JSON
 * object (one line per run) for machine consumption.
 *
 * Fault injection goes through the unified fault plane
 * (sim/fault.hh): --faults takes a spec string, --wedge N is sugar
 * for N permanently stalled workers (core.stall@mag=0), --attempts
 * sets the scheduler's per-job retry budget, and --fault-sweep runs
 * a fixed set of fault scenarios back to back reporting availability
 * and tail latency for each.
 *
 * This is not a paper figure: the paper reports per-app gains
 * (Figure 14) but deployed the chip as a many-DPU database
 * appliance; this bench is the repro of that serving posture.
 */

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/report.hh"
#include "host/offload.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "soc/soc.hh"

using namespace dpu;

namespace {

/** One slot of the request mix: app, weight, request sizing. */
struct MixEntry
{
    const char *app;
    double weight;
    std::initializer_list<
        std::pair<std::string_view, std::string_view>>
        opts;
};

/**
 * A database-appliance-flavoured mix: mostly scan/aggregate SQL
 * operators, some analytics, a trickle of heavy vision work. Sizes
 * are per-request (one 4-core group), not per-chip — they must fit
 * the group's DMEM working set and finish well inside the 50 ms
 * default deadline.
 */
const MixEntry servingMix[] = {
    {"filter", 0.30, {{"rowsPerCore", "16384"}}},
    {"groupby-low", 0.20, {{"nRows", "65536"}, {"ndv", "512"}}},
    {"hll-crc",
     0.15,
     {{"nElements", "32768"}, {"cardinality", "8192"},
      {"pBits", "12"}}},
    {"json", 0.15, {{"nRecords", "2048"}}},
    {"svm", 0.10, {{"nTest", "8192"}, {"dims", "64"}}},
    {"simsearch",
     0.05,
     {{"nDocs", "1024"}, {"vocab", "2048"}, {"nQueries", "1"}}},
    {"disparity",
     0.05,
     {{"width", "64"}, {"height", "32"}, {"maxShift", "8"}}},
};

const char *
stateName(host::JobState st)
{
    switch (st) {
    case host::JobState::Queued: return "queued";
    case host::JobState::Running: return "running";
    case host::JobState::Completed: return "completed";
    case host::JobState::TimedOut: return "timedOut";
    case host::JobState::Rejected: return "rejected";
    }
    return "?";
}

bool
argFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    return false;
}

/** One serving run's shape. */
struct RunCfg
{
    double rate = 4000;
    unsigned nJobs = 32;
    unsigned closed = 0;
    unsigned wedge = 0;
    unsigned attempts = 1;
    std::uint64_t seed = 7;
    std::string faults;     ///< fault-plane spec ("" = clean run)
    const char *label = ""; ///< sweep case name ("" outside sweeps)
};

/**
 * Run one serving scenario end to end (fresh Soc, scheduler, fault
 * plane) and report it. @return 0 when every gate holds.
 */
int
runServing(const RunCfg &cfg)
{
    // --wedge N rides the fault plane: N workers park forever just
    // before running their lane — the same failure the old ad-hoc
    // wedged-job hook planted, now shared with tests and the chaos
    // harness. nth=13 spaces the fires across distinct dispatches.
    std::string spec = cfg.faults;
    if (cfg.wedge > 0) {
        char rule[64];
        std::snprintf(rule, sizeof(rule),
                      "core.stall@nth=13,max=%u,mag=0", cfg.wedge);
        if (!spec.empty())
            spec += ';';
        spec += rule;
    }
    sim::faultPlane().reset();
    if (!spec.empty())
        sim::faultPlane().configure(spec, cfg.seed);

    soc::Soc s;
    soc::HostA9 a9(s.eventQueue(), s.mbc());
    host::OffloadParams op;
    op.maxAttempts = cfg.attempts;
    host::OffloadScheduler sched(s, a9, op);

    double total_weight = 0;
    for (const MixEntry &m : servingMix)
        total_weight += m.weight;

    sim::Rng rng(cfg.seed);
    auto makeReq = [&]() {
        double u = rng.uniform() * total_weight;
        const MixEntry *pick = std::end(servingMix) - 1;
        for (const MixEntry &m : servingMix) {
            if (u < m.weight) {
                pick = &m;
                break;
            }
            u -= m.weight;
        }
        const apps::AppSpec *spec_ = apps::findApp(pick->app);
        sim_assert(spec_, "mix names unknown app \"%s\"", pick->app);
        apps::ConfigHandle appcfg = spec_->makeConfig();
        for (const auto &[k, v] : pick->opts)
            sim_assert(spec_->set(appcfg, k, v),
                       "bad option %.*s for %s", int(k.size()),
                       k.data(), pick->app);
        host::JobRequest req;
        req.app = pick->app;
        req.cfg = std::move(appcfg);
        req.seed = rng.next();
        return req;
    };

    unsigned issued = 0;
    if (cfg.closed > 0) {
        // Closed loop: keep `closed` requests outstanding until
        // nJobs have been issued (each completion resubmits).
        for (unsigned i = 0; i < cfg.closed && issued < cfg.nJobs;
             ++i) {
            sched.enqueueAt(0, makeReq());
            ++issued;
        }
        sched.onComplete([&](const host::JobRecord &) {
            if (issued < cfg.nJobs) {
                ++issued;
                (void)sched.submitNow(makeReq());
            }
        });
    } else {
        // Open loop: Poisson arrivals, rate jobs/s, oblivious to
        // completions (the queue absorbs or rejects bursts).
        sim_assert(cfg.rate > 0, "open-loop needs --rate > 0");
        sim::Tick t = 0;
        for (unsigned i = 0; i < cfg.nJobs; ++i) {
            const double gap_s =
                -std::log(1.0 - rng.uniform()) / cfg.rate;
            t += sim::Tick(gap_s * 1e12);
            sched.enqueueAt(t, makeReq());
            ++issued;
        }
    }

    sched.start();
    s.run();
    bench::flushTrace();

    const host::ServingSummary sum = sched.summary();

    // Steady-state window: drop the first and last 10% of
    // completions (warm-up ramp and tail drain).
    std::vector<double> window;
    {
        std::vector<const host::JobRecord *> done;
        for (const host::JobRecord &r : sched.jobs())
            if (r.state == host::JobState::Completed)
                done.push_back(&r);
        const std::size_t skip = done.size() / 10;
        for (std::size_t i = skip; i + skip < done.size(); ++i)
            window.push_back(done[i]->latencyUs());
        std::sort(window.begin(), window.end());
    }
    auto pct = [&](double q) {
        if (window.empty())
            return 0.0;
        std::size_t rank =
            std::size_t(q * double(window.size()) + 0.5);
        if (rank > 0)
            --rank;
        return window[std::min(rank, window.size() - 1)];
    };

    // Per-app completion counts and mean latency.
    struct AppAgg
    {
        std::uint64_t n = 0;
        double sumUs = 0;
    };
    std::map<std::string, AppAgg> perApp;
    for (const host::JobRecord &r : sched.jobs())
        if (r.state == host::JobState::Completed) {
            AppAgg &a = perApp[r.app];
            ++a.n;
            a.sumUs += r.latencyUs();
        }

    bench::row("  load: %s, %u jobs, %u groups of %u cores%s%s",
               cfg.closed ? "closed-loop" : "open-loop", issued,
               sched.nGroups(), op.groupSize,
               spec.empty() ? "" : ", faults: ",
               spec.empty() ? "" : spec.c_str());
    bench::row("  %-14s %8s %12s", "app", "done", "mean us");
    for (const auto &[name, agg] : perApp)
        bench::row("  %-14s %8llu %12.1f", name.c_str(),
                   (unsigned long long)agg.n,
                   agg.n ? agg.sumUs / double(agg.n) : 0.0);
    bench::row(
        "  completed %llu  timedOut %llu  rejected %llu  "
        "validationFailed %llu",
        (unsigned long long)sum.completed,
        (unsigned long long)sum.timedOut,
        (unsigned long long)sum.rejected,
        (unsigned long long)sum.validationFailed);
    bench::row(
        "  requeued %llu  quarantines %llu  wedgeTimeouts %llu  "
        "availability %.4f",
        (unsigned long long)sum.requeued,
        (unsigned long long)sum.quarantines,
        (unsigned long long)sum.wedgeTimeouts, sum.availability);
    bench::row("  latency us: p50 %.1f  p95 %.1f  p99 %.1f  "
               "mean %.1f  max %.1f",
               sum.p50Us, sum.p95Us, sum.p99Us, sum.meanUs,
               sum.maxUs);
    bench::row("  steady-state us: p50 %.1f  p95 %.1f  p99 %.1f",
               pct(0.50), pct(0.95), pct(0.99));
    bench::row("  throughput: %.0f jobs/s",
               sum.throughputJobsPerSec);

    // Machine-readable report (one line per run).
    {
        bench::Json j;
        j.field("bench", "serving")
            .field("case", cfg.label)
            .field("mode", cfg.closed ? "closed" : "open")
            .field("rateJobsPerSec", cfg.closed ? 0.0 : cfg.rate)
            .field("jobs", std::uint64_t(issued))
            .field("groups", std::uint64_t(sched.nGroups()))
            .field("groupSize", std::uint64_t(op.groupSize))
            .field("faults", spec)
            .field("maxAttempts", std::uint64_t(cfg.attempts));
        j.obj("counts")
            .field("submitted", sum.submitted)
            .field("accepted", sum.accepted)
            .field("rejected", sum.rejected)
            .field("completed", sum.completed)
            .field("timedOut", sum.timedOut)
            .field("validationFailed", sum.validationFailed)
            .field("lateJobs", sum.lateJobs)
            .field("wedgedGroups", sum.wedgedGroups)
            .field("requeued", sum.requeued)
            .field("quarantines", sum.quarantines)
            .field("wedgeTimeouts", sum.wedgeTimeouts)
            .end();
        j.field("availability", sum.availability);
        j.obj("latencyUs")
            .field("p50", sum.p50Us)
            .field("p95", sum.p95Us)
            .field("p99", sum.p99Us)
            .field("mean", sum.meanUs)
            .field("max", sum.maxUs)
            .end();
        j.obj("steadyStateUs")
            .field("p50", pct(0.50))
            .field("p95", pct(0.95))
            .field("p99", pct(0.99))
            .end();
        j.field("throughputJobsPerSec", sum.throughputJobsPerSec);
        j.arr("apps");
        for (const auto &[name, agg] : perApp)
            j.elem()
                .field("name", name)
                .field("completed", agg.n)
                .field("meanUs",
                       agg.n ? agg.sumUs / double(agg.n) : 0.0)
                .end();
        j.end();
    }

    sim::faultPlane().reset();

    // Functional gates for CI: everything submitted must resolve,
    // nothing may be left in flight, and something must complete.
    // Under injected faults a job may legitimately fail validation
    // (e.g. a descriptor error-completion leaves its output arena
    // unwritten) — the recovery contract is clean attribution, not
    // correctness of a faulted lane — so the validation gate only
    // binds on clean runs. Every injected wedge must be reaped as a
    // timeout when retries are off.
    if (sum.completed + sum.timedOut + sum.rejected !=
            sum.submitted ||
        sum.completed == 0) {
        std::fprintf(stderr, "serving bench failed its gates\n");
        return 1;
    }
    if (spec.empty() && sum.validationFailed != 0) {
        std::fprintf(stderr, "clean run failed validation\n");
        return 1;
    }
    if (cfg.wedge > 0 && cfg.attempts <= 1 &&
        sum.timedOut < cfg.wedge) {
        std::fprintf(stderr, "wedged jobs not all reaped\n");
        return 1;
    }
    for (const host::JobRecord &r : sched.jobs())
        if (r.state == host::JobState::Queued ||
            r.state == host::JobState::Running) {
            std::fprintf(stderr, "job %llu left %s\n",
                         (unsigned long long)r.id,
                         stateName(r.state));
            return 1;
        }
    return 0;
}

/** The --fault-sweep scenarios: fixed specs, one run each. */
struct SweepEntry
{
    const char *name;
    const char *spec;
};

const SweepEntry faultSweep[] = {
    {"none", ""},
    {"ateDelay", "ate.delay@p=0.05,mag=2000000"},
    {"mbcDrop", "mbc.drop@nth=40,max=2"},
    {"memDegrade", "mem.degrade@from=1000000,to=8000000,mag=4"},
    {"coreStall", "core.stall@nth=9,max=3,mag=400000"},
    {"descError", "dms.descError@p=0.02,max=3"},
};

} // namespace

int
main(int argc, char **argv)
{
    sim::setVerbose(false);
    const bool smoke = bench::smokeRun(argc, argv);

    RunCfg cfg;
    cfg.rate =
        std::atof(bench::argValue(argc, argv, "--rate", "4000"));
    cfg.nJobs = unsigned(std::atoi(bench::argValue(
        argc, argv, "--jobs", smoke ? "32" : "512")));
    cfg.closed = unsigned(
        std::atoi(bench::argValue(argc, argv, "--closed", "0")));
    cfg.wedge = unsigned(
        std::atoi(bench::argValue(argc, argv, "--wedge", "0")));
    cfg.attempts = unsigned(
        std::atoi(bench::argValue(argc, argv, "--attempts", "1")));
    cfg.seed = std::strtoull(
        bench::argValue(argc, argv, "--seed", "7"), nullptr, 10);
    cfg.faults = bench::argValue(argc, argv, "--faults", "");

    bench::header("Serving",
                  "offload scheduler under mixed-app load");

    if (argFlag(argc, argv, "--fault-sweep")) {
        // Sweep a fixed fault menu with retries on, reporting
        // availability and tail latency per scenario.
        int rc = 0;
        for (const SweepEntry &e : faultSweep) {
            RunCfg c = cfg;
            c.faults = e.spec;
            c.label = e.name;
            c.wedge = 0;
            c.attempts = std::max(cfg.attempts, 2u);
            bench::row("-- fault sweep: %s --", e.name);
            rc |= runServing(c);
        }
        return rc;
    }

    return runServing(cfg);
}

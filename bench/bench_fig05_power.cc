/**
 * @file
 * Figure 5: DPU power breakdown (total 5.8 W at 40 nm). Prints the
 * component split — the paper publishes the 37% leakage share and
 * the 51 mW per-dpCore dynamic power; the remaining components are
 * the reconstruction documented in DESIGN.md — plus the M0's
 * power-state behaviour (4 states, per-macro gating, Section 2.4).
 */

#include "bench/report.hh"
#include "soc/power.hh"

using namespace dpu::soc;

int
main()
{
    bench::header("Figure 5", "DPU power breakdown (40 nm)");

    PowerModel pm(dpu40nm());
    double total = 0;
    for (const auto &c : pm.breakdown())
        total += c.watts;
    for (const auto &c : pm.breakdown()) {
        bench::row("  %-24s %6.3f W  (%4.1f%%)", c.name.c_str(),
                   c.watts, 100.0 * c.watts / total);
    }
    bench::row("  %-24s %6.3f W", "TOTAL", total);
    bench::compare("total design power", 5.8, total, "W");
    bench::compare("leakage share", 37.0,
                   100.0 * pm.breakdown()[0].watts / total, "%");
    bench::compare("per-dpCore dynamic", 51.0,
                   1000.0 * pm.breakdown()[1].watts / 32, "mW");

    bench::row("\n  M0 power states (macro 0 stepped down):");
    const PowerState states[] = {
        PowerState::Active, PowerState::ClockGated,
        PowerState::Retention, PowerState::Off};
    const char *names[] = {"active", "clock-gated", "retention",
                           "off"};
    for (int i = 0; i < 4; ++i) {
        pm.setMacroState(0, states[i]);
        bench::row("    %-12s chip = %5.3f W", names[i],
                   pm.totalWatts());
    }

    bench::row("\n  16 nm shrink (Section 2.5): %u cores, %.1f W",
               dpu16nm().nCores(), PowerModel(dpu16nm()).totalWatts());
    return 0;
}

/**
 * @file
 * Figure 11: DMS read (R) and read+write (RW) bandwidth across 32
 * dpCores for a column-major table, sweeping the column count
 * (1..32) and the DMEM tile size. Paper shape: bandwidth rises with
 * tile size (fixed DMS configuration overheads amortize), falls
 * slightly with more columns (the DMS fetches one column at a time
 * and pays non-contiguous DRAM page latency), and peaks above
 * 9 GB/s at 8 KB buffers (~75% of DDR3 peak).
 */

#include <vector>

#include "bench/report.hh"
#include "rt/dms_ctl.hh"
#include "soc/soc.hh"

using namespace dpu;

namespace {

/** Aggregate bandwidth with all 32 cores streaming. */
double
run(unsigned n_cols, std::uint32_t tile_bytes, bool write_back,
    std::uint64_t bytes_per_core)
{
    soc::SocParams p = soc::dpu40nm();
    const std::uint64_t col_bytes = bytes_per_core / n_cols;
    p.ddrBytes = 160 << 20;
    soc::Soc s(p);

    const mem::Addr out_base = 96 << 20;
    for (unsigned id = 0; id < 32; ++id) {
        s.start(id, [&, id, n_cols, tile_bytes,
                     write_back](core::DpCore &c) {
            rt::DmsCtl ctl(c, s.dms());
            // Row-aligned tiles: every iteration fetches the next
            // tile of EVERY column (the access pattern a scan over
            // a column-major table needs), double-buffered across
            // two rewritable descriptor slots. Column switches hit
            // different DRAM regions — the paper's "small latency
            // overhead in fetching non-contiguous DRAM pages".
            dms::Descriptor nop;
            rt::DescHandle slot[2] = {ctl.setup(nop),
                                      ctl.setup(nop)};
            bool pending[2] = {false, false};
            const std::uint64_t tiles_per_col =
                col_bytes / tile_bytes;
            const std::uint64_t total_tiles =
                tiles_per_col * n_cols;
            unsigned out_bufs = tile_bytes >= 8192 ? 1 : 2;
            rt::StreamWriter out(ctl,
                                 out_base + mem::Addr(id) *
                                                bytes_per_core,
                                 std::uint16_t(2 * tile_bytes),
                                 tile_bytes, out_bufs, 8, 1);
            auto fetch = [&](std::uint64_t t_idx, unsigned sl) {
                unsigned col = unsigned(t_idx % n_cols);
                std::uint64_t tile = t_idx / n_cols;
                dms::Descriptor d;
                d.type = dms::DescType::DdrToDmem;
                d.rows = tile_bytes / 4;
                d.colWidth = 4;
                d.ddrAddr = (mem::Addr(col) * 32 + id) * col_bytes +
                            tile * tile_bytes;
                d.dmemAddr = std::uint16_t(sl * tile_bytes);
                d.notifyEvent = std::int8_t(sl);
                ctl.rewrite(slot[sl], d);
                ctl.push(slot[sl], 0);
                pending[sl] = true;
            };
            fetch(0, 0);
            if (total_tiles > 1)
                fetch(1, 1);
            for (std::uint64_t t_idx = 0; t_idx < total_tiles;
                 ++t_idx) {
                unsigned sl = unsigned(t_idx & 1);
                ctl.wfe(sl);
                c.dualIssue(tile_bytes / 8, tile_bytes / 8);
                if (write_back) {
                    (void)out.acquire();
                    out.commit(tile_bytes);
                }
                ctl.clearEvent(sl);
                pending[sl] = false;
                if (t_idx + 2 < total_tiles)
                    fetch(t_idx + 2, sl);
            }
            if (write_back)
                out.finish();
            (void)pending;
        });
    }
    sim::Tick t = s.run();
    double moved = 32.0 * bytes_per_core * (write_back ? 2 : 1);
    return moved / (double(t) * 1e-12) / 1e9;
}

} // namespace

int
main(int argc, char **argv)
{
    sim::setVerbose(false);
    const bool smoke = bench::smokeRun(argc, argv);
    bench::header("Figure 11",
                  "DMS R / RW bandwidth vs columns and tile size");

    // Smoke: a corner sample of the sweep over a quarter of the
    // data. Tiles must not exceed col_bytes at the widest table.
    const std::uint64_t bytes_per_core =
        smoke ? 64 << 10 : 256 << 10;
    const std::vector<unsigned> cols =
        smoke ? std::vector<unsigned>{1, 4, 8}
              : std::vector<unsigned>{1, 2, 4, 8, 16, 32};
    const std::vector<std::uint32_t> tiles =
        smoke ? std::vector<std::uint32_t>{1024, 8192}
              : std::vector<std::uint32_t>{512, 1024, 2048, 8192};

    for (bool rw : {false, true}) {
        bench::row("\n  %s bandwidth (GB/s):", rw ? "R+W" : "R");
        std::printf("    cols:");
        for (unsigned c : cols)
            std::printf(" %7u", c);
        std::printf("\n");
        for (std::uint32_t tb : tiles) {
            std::printf("  %5u B", tb);
            for (unsigned c : cols)
                std::printf(" %7.2f",
                            run(c, tb, rw, bytes_per_core));
            std::printf("\n");
        }
    }

    bench::compare("peak R bandwidth at 8 KB tiles", 9.3,
                   run(4, 8192, false, bytes_per_core), "GB/s");
    bench::flushTrace();
    bench::row("  paper shape: >9 GB/s at 8 KB tiles (75%% of DDR3"
               " peak); small tiles lose bandwidth to fixed DMS"
               " configuration overheads. (Our bank model prices"
               " column switches into every configuration, so the"
               " per-column slope is flatter than the paper's"
               " already-slight decrease.)");
    return 0;
}

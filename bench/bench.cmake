# One binary per paper figure/table; each prints the measured series
# next to the paper's published anchors.
function(dpu_add_bench name)
    add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
    target_link_libraries(${name} PRIVATE dpu_apps dpu_rt dpu_soc dpu_xeon)
    target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR})
    # build/bench/ holds ONLY runnable binaries, so that
    #   for b in build/bench/*; do $b; done
    # regenerates every figure with no CMake clutter in the glob.
    set_target_properties(${name} PROPERTIES
        RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

dpu_add_bench(bench_fig02_ate)
dpu_add_bench(bench_fig05_power)
dpu_add_bench(bench_fig11_dms_bw)
dpu_add_bench(bench_fig12_gather)
dpu_add_bench(bench_fig13_partition)
dpu_add_bench(bench_fig14_apps)
dpu_add_bench(bench_fig15_filter)
dpu_add_bench(bench_fig16_tpch)
dpu_add_bench(bench_ablation_16nm)
dpu_add_bench(bench_serving)
target_link_libraries(bench_serving PRIVATE dpu_host)
dpu_add_bench(bench_board)
target_link_libraries(bench_board PRIVATE dpu_host dpu_board)
dpu_add_bench(bench_rack)
target_link_libraries(bench_rack PRIVATE dpu_host dpu_board dpu_rack dpu_topo)
dpu_add_bench(bench_simperf)

/**
 * @file
 * Figure 14: performance/watt gain of the 40 nm DPU over the Xeon
 * server for every co-design application (Section 5), at the
 * paper's 6 W vs 145 W provisioned powers. Each row regenerates
 * the corresponding bar; the functional outputs are cross-checked
 * (column "ok") before the ratio is reported.
 */

#include <vector>

#include "apps/disparity.hh"
#include "apps/hll.hh"
#include "apps/json.hh"
#include "apps/simsearch.hh"
#include "apps/sql/filter.hh"
#include "apps/sql/groupby.hh"
#include "apps/svm.hh"
#include "bench/report.hh"

using namespace dpu;
using namespace dpu::apps;

int
main()
{
    sim::setVerbose(false);
    bench::header("Figure 14",
                  "DPU perf/watt gains vs Xeon (per application)");

    struct Entry
    {
        AppResult r;
        double paper;
    };
    std::vector<Entry> rows;

    {
        SvmConfig cfg;
        rows.push_back({svmApp(cfg), 15.0});
    }
    {
        SimSearchConfig cfg;
        rows.push_back({simSearchApp(cfg), 3.9});
    }
    {
        sql::FilterConfig cfg;
        cfg.rowsPerCore = 256 << 10;
        rows.push_back({sql::filterApp(cfg), 6.7});
    }
    {
        sql::GroupByConfig low;
        low.nRows = 1 << 20;
        low.ndv = 256;
        rows.push_back({sql::groupByLowApp(low), 6.7});
        sql::GroupByConfig high;
        high.nRows = 1 << 20;
        high.ndv = 256 << 10;
        rows.push_back({sql::groupByHighApp(high), 9.7});
    }
    {
        HllConfig cfg;
        rows.push_back({hllApp(cfg), 9.0});
        cfg.hash = HllHash::Murmur64;
        rows.push_back({hllApp(cfg), 1.5});
    }
    {
        JsonConfig cfg;
        rows.push_back({jsonApp(cfg), 8.0});
    }
    {
        DisparityConfig cfg;
        rows.push_back({disparityApp(cfg), 8.6});
    }

    bench::row("  %-22s %6s %9s %9s %8s %8s", "application", "ok",
               "dpu (ms)", "xeon (ms)", "paper x", "ours x");
    for (const Entry &e : rows) {
        bench::row("  %-22s %6s %9.3f %9.3f %8.1f %8.1f",
                   e.r.name.c_str(), e.r.matched ? "yes" : "NO",
                   e.r.dpuSeconds * 1e3, e.r.xeonSeconds * 1e3,
                   e.paper, e.r.gain());
    }
    bench::row("\n  paper shape: 3x-15x across the suite; SVM tops,"
               " similarity search bottoms, Murmur HLL does poorly.");
    return 0;
}

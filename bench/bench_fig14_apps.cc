/**
 * @file
 * Figure 14: performance/watt gain of the 40 nm DPU over the Xeon
 * server for every co-design application (Section 5), at the
 * paper's 6 W vs 145 W provisioned powers. The rows come straight
 * out of the app registry (apps/registry.hh) — every registered
 * spec carries its paper anchor and its Figure-14 default config —
 * and the functional outputs are cross-checked (column "ok") before
 * the ratio is reported.
 */

#include "apps/registry.hh"
#include "bench/report.hh"
#include "sim/logging.hh"

using namespace dpu;
using namespace dpu::apps;

namespace {

/** Per-app overrides that shrink the run for --smoke. */
struct Shrink
{
    const char *app;
    std::initializer_list<
        std::pair<std::string_view, std::string_view>>
        opts;
};

const std::initializer_list<Shrink> smokeShrinks = {
    {"svm", {{"nTrain", "1024"}, {"nTest", "256"}, {"maxIters", "60"}}},
    {"simsearch", {{"nDocs", "2048"}, {"nQueries", "4"}}},
    {"filter", {{"rowsPerCore", "8192"}}},
    {"groupby-low", {{"nRows", "65536"}}},
    {"groupby-high", {{"nRows", "65536"}, {"ndv", "8192"}}},
    {"hll-crc", {{"nElements", "262144"}, {"cardinality", "32768"}}},
    {"hll-murmur", {{"nElements", "65536"}, {"cardinality", "8192"}}},
    {"json", {{"nRecords", "2048"}}},
    {"disparity", {{"width", "128"}, {"height", "64"}}},
};

} // namespace

int
main(int argc, char **argv)
{
    sim::setVerbose(false);
    const bool smoke = bench::smokeRun(argc, argv);
    bench::header("Figure 14",
                  "DPU perf/watt gains vs Xeon (per application)");

    bench::row("  %-22s %6s %9s %9s %8s %8s", "application", "ok",
               "dpu (ms)", "xeon (ms)", "paper x", "ours x");
    for (const AppSpec &spec : registry()) {
        ConfigHandle cfg = spec.makeConfig();
        if (smoke)
            for (const Shrink &s : smokeShrinks)
                if (spec.name == s.app)
                    for (const auto &[k, v] : s.opts)
                        spec.set(cfg, k, v);
        const AppResult r = spec.run(cfg);
        bench::row("  %-22s %6s %9.3f %9.3f %8.1f %8.1f",
                   r.name.c_str(), r.matched ? "yes" : "NO",
                   r.dpuSeconds * 1e3, r.xeonSeconds * 1e3,
                   spec.paperGain, r.gain());
    }
    bench::row("\n  paper shape: 3x-15x across the suite; SVM tops,"
               " similarity search bottoms, Murmur HLL does poorly.");
    return 0;
}

/**
 * @file
 * Figure 15: the SQL filter primitive on one dpCore — tuples/second
 * against the DMEM tile size — plus the 32-core aggregate. Paper
 * anchors: 482 Mtuples/s at the best tile (1.65 cycles/tuple) and
 * 9.6 GB/s across 32 dpCores.
 */

#include <vector>

#include "apps/sql/filter.hh"
#include "bench/report.hh"

using namespace dpu;
using namespace dpu::apps::sql;

int
main(int argc, char **argv)
{
    sim::setVerbose(false);
    const bool smoke = bench::smokeRun(argc, argv);
    bench::header("Figure 15", "filter primitive vs DMEM tile size");

    bench::row("  %-12s %14s %14s", "tile size", "Mtuples/s",
               "cycles/tuple");
    const std::vector<std::uint32_t> tiles =
        smoke ? std::vector<std::uint32_t>{512, 8192}
              : std::vector<std::uint32_t>{512, 1024, 2048, 4096,
                                           8192};
    double best = 0, best_cpt = 0;
    for (std::uint32_t tb : tiles) {
        FilterConfig cfg;
        cfg.nCores = 1;
        cfg.rowsPerCore = smoke ? 1 << 18 : 1 << 20;
        cfg.tileBytes = tb;
        FilterResult r = dpuFilter(soc::dpu40nm(), cfg);
        bench::row("  %9u B %14.1f %14.2f", tb, r.mtuplesPerSec(),
                   r.cyclesPerTuple(1));
        if (r.mtuplesPerSec() > best) {
            best = r.mtuplesPerSec();
            best_cpt = r.cyclesPerTuple(1);
        }
    }
    bench::compare("single-core peak", 482.0, best, "Mtuples/s");
    bench::compare("cycles per tuple", 1.65, best_cpt, "cycles");

    FilterConfig cfg32;
    cfg32.nCores = 32;
    cfg32.rowsPerCore = smoke ? 64 << 10 : 256 << 10;
    cfg32.tileBytes = 8192;
    FilterResult r32 = dpuFilter(soc::dpu40nm(), cfg32);
    bench::compare("32-core aggregate", 9.6, r32.gbPerSec(), "GB/s");
    return 0;
}

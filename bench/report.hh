/**
 * @file
 * Tiny reporting helpers shared by the per-figure benchmark
 * binaries: aligned table printing plus the paper-vs-measured
 * footer every bench emits.
 */

#ifndef DPU_BENCH_REPORT_HH
#define DPU_BENCH_REPORT_HH

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <string>

#include "sim/trace.hh"

namespace bench {

/**
 * True when the bench was invoked with --smoke (CI mode): run the
 * same code paths with tiny parameters so the binary finishes in
 * seconds and bit-rot is caught, without pretending the numbers
 * mean anything.
 */
inline bool
smokeRun(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            return true;
    return false;
}

/** Value of `--flag <v>` / `--flag=<v>`, or @p fallback. */
inline const char *
argValue(int argc, char **argv, const char *flag,
         const char *fallback)
{
    const std::size_t len = std::strlen(flag);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc)
            return argv[i + 1];
        if (std::strncmp(argv[i], flag, len) == 0 &&
            argv[i][len] == '=')
            return argv[i] + len + 1;
    }
    return fallback;
}

/**
 * Minimal JSON object writer for bench reports. Flat or one level
 * of nesting (obj()/arr()), numbers and strings only — enough for
 * machine-readable bench output without a JSON dependency.
 */
class Json
{
  public:
    /** @p out defaults to stdout; pass a file to tee elsewhere. */
    explicit Json(std::FILE *out = stdout) : f(out)
    {
        std::fputc('{', f);
        open.push_back('}');
    }

    ~Json()
    {
        while (!open.empty())
            end();
        std::fputc('\n', f);
        std::fflush(f);
    }

    Json &
    field(const char *key, double v)
    {
        prefix(key);
        std::fprintf(f, "%.6g", v);
        return *this;
    }

    Json &
    field(const char *key, std::uint64_t v)
    {
        prefix(key);
        std::fprintf(f, "%llu", (unsigned long long)v);
        return *this;
    }

    Json &
    field(const char *key, const char *v)
    {
        prefix(key);
        quote(v);
        return *this;
    }

    Json &
    field(const char *key, const std::string &v)
    {
        return field(key, v.c_str());
    }

    /** Open a nested object; close with end(). */
    Json &
    obj(const char *key)
    {
        prefix(key);
        std::fputc('{', f);
        open.push_back('}');
        first = true;
        return *this;
    }

    /** Open a nested array; close with end(). */
    Json &
    arr(const char *key)
    {
        prefix(key);
        std::fputc('[', f);
        open.push_back(']');
        first = true;
        return *this;
    }

    /** Anonymous object as an array element; close with end(). */
    Json &
    elem()
    {
        if (!first)
            std::fputc(',', f);
        std::fputc('{', f);
        open.push_back('}');
        first = true;
        return *this;
    }

    /** Close the innermost obj()/arr()/elem(). */
    Json &
    end()
    {
        std::fputc(open.back(), f);
        open.pop_back();
        first = false;
        return *this;
    }

  private:
    void
    prefix(const char *key)
    {
        if (!first)
            std::fputc(',', f);
        first = false;
        quote(key);
        std::fputc(':', f);
    }

    void
    quote(const char *s)
    {
        std::fputc('"', f);
        for (; *s; ++s) {
            if (*s == '"' || *s == '\\')
                std::fputc('\\', f);
            std::fputc(*s, f);
        }
        std::fputc('"', f);
    }

    std::FILE *f;
    std::string open;
    bool first = true;
};

inline void
header(const char *fig, const char *title)
{
    std::printf("\n=== %s — %s ===\n", fig, title);
}

inline void
row(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::vprintf(fmt, ap);
    va_end(ap);
    std::printf("\n");
}

/** One "paper says X, we measured Y" comparison line. */
inline void
compare(const char *what, double paper, double measured,
        const char *unit)
{
    std::printf("  %-44s paper %8.2f  measured %8.2f  %s\n", what,
                paper, measured, unit);
}

/**
 * Write the event trace to the DPU_TRACE file now, mid-process.
 * Benches call this after their interesting phase so a user tracing
 * with DPU_TRACE=out.json gets the file even if the bench keeps
 * running (the atexit flush would also write it, but only with
 * whatever still fits in the ring by then). No-op unless armed.
 */
inline void
flushTrace()
{
    dpu::sim::tracer().flushToFileIfArmed();
}

} // namespace bench

#endif // DPU_BENCH_REPORT_HH

/**
 * @file
 * Tiny reporting helpers shared by the per-figure benchmark
 * binaries: aligned table printing plus the paper-vs-measured
 * footer every bench emits.
 */

#ifndef DPU_BENCH_REPORT_HH
#define DPU_BENCH_REPORT_HH

#include <cstdarg>
#include <cstdio>

#include "sim/trace.hh"

namespace bench {

inline void
header(const char *fig, const char *title)
{
    std::printf("\n=== %s — %s ===\n", fig, title);
}

inline void
row(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::vprintf(fmt, ap);
    va_end(ap);
    std::printf("\n");
}

/** One "paper says X, we measured Y" comparison line. */
inline void
compare(const char *what, double paper, double measured,
        const char *unit)
{
    std::printf("  %-44s paper %8.2f  measured %8.2f  %s\n", what,
                paper, measured, unit);
}

/**
 * Write the event trace to the DPU_TRACE file now, mid-process.
 * Benches call this after their interesting phase so a user tracing
 * with DPU_TRACE=out.json gets the file even if the bench keeps
 * running (the atexit flush would also write it, but only with
 * whatever still fits in the ring by then). No-op unless armed.
 */
inline void
flushTrace()
{
    dpu::sim::tracer().flushToFileIfArmed();
}

} // namespace bench

#endif // DPU_BENCH_REPORT_HH

/**
 * @file
 * Tiny reporting helpers shared by the per-figure benchmark
 * binaries: aligned table printing plus the paper-vs-measured
 * footer every bench emits.
 */

#ifndef DPU_BENCH_REPORT_HH
#define DPU_BENCH_REPORT_HH

#include <cstdarg>
#include <cstdio>

namespace bench {

inline void
header(const char *fig, const char *title)
{
    std::printf("\n=== %s — %s ===\n", fig, title);
}

inline void
row(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::vprintf(fmt, ap);
    va_end(ap);
    std::printf("\n");
}

/** One "paper says X, we measured Y" comparison line. */
inline void
compare(const char *what, double paper, double measured,
        const char *unit)
{
    std::printf("  %-44s paper %8.2f  measured %8.2f  %s\n", what,
                paper, measured, unit);
}

} // namespace bench

#endif // DPU_BENCH_REPORT_HH

/**
 * @file
 * Figure 12: DMS gather bandwidth with a dense (0xF7) and a sparse
 * (0x13) bit vector. The first-silicon RTL bug forces the software
 * workaround — only ONE dpCore may have a gather outstanding — so
 * the measured aggregate is far below line rate ("hence the low
 * gather bandwidth", Section 3.4). A fixed-RTL run (all 32 cores
 * gathering concurrently) is included as the ablation.
 */

#include <vector>

#include "bench/report.hh"
#include "rt/dms_ctl.hh"
#include "rt/sync.hh"
#include "soc/soc.hh"

using namespace dpu;

namespace {

/**
 * @param pattern     Repeating 8-row selection mask.
 * @param concurrent  Fixed-RTL mode: every core gathers at once.
 *                    Otherwise a global ATE lock serializes issuers
 *                    (the paper's workaround).
 * @return aggregate useful bandwidth in GB/s (selected bytes/time).
 */
double
run(std::uint8_t pattern, bool concurrent)
{
    soc::SocParams p = soc::dpu40nm();
    p.ddrBytes = 64 << 20;
    p.dms.emulateGatherBug = !concurrent;
    soc::Soc s(p);

    const std::uint32_t rows_per_op = 4096; // 16 KB scanned / op
    const unsigned ops_per_core = 24;
    std::vector<std::uint8_t> mask(rows_per_op / 8, pattern);
    const unsigned sel_per_op =
        unsigned(__builtin_popcount(pattern)) * rows_per_op / 8;

    rt::AteMutex gather_lock(0, 26 * 1024);

    for (unsigned id = 0; id < 32; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            rt::DmsCtl ctl(c, s.dms());
            c.dmem().write(20 * 1024, mask.data(), mask.size());

            dms::Descriptor bv;
            bv.type = dms::DescType::DmemToDms;
            bv.rows = std::uint32_t(mask.size());
            bv.ibank = id % dms::nBvBanks;
            bv.dmemAddr = 20 * 1024;
            bv.notifyEvent = 1;

            dms::Descriptor g;
            g.type = dms::DescType::DdrToDmem;
            g.gatherSrc = true;
            g.ibank = id % dms::nBvBanks;
            g.rows = rows_per_op;
            g.colWidth = 4;
            g.dmemAddr = 0;
            g.notifyEvent = 2;

            for (unsigned op = 0; op < ops_per_core; ++op) {
                if (!concurrent)
                    gather_lock.lock(c, s.ate());
                ctl.resetArena();
                ctl.push(ctl.setup(bv));
                ctl.wfe(1);
                ctl.clearEvent(1);
                g.ddrAddr = (mem::Addr(id) * ops_per_core + op) *
                            rows_per_op * 4;
                ctl.push(ctl.setup(g));
                ctl.wfe(2);
                ctl.clearEvent(2);
                if (!concurrent)
                    gather_lock.unlock(c, s.ate());
                c.dualIssue(sel_per_op, sel_per_op / 2);
            }
        });
    }
    sim::Tick t = s.run();
    double useful = 32.0 * ops_per_core * sel_per_op * 4;
    return useful / (double(t) * 1e-12) / 1e9;
}

} // namespace

int
main()
{
    sim::setVerbose(false);
    bench::header("Figure 12", "DMS gather bandwidth (bit vector)");

    double dense_wa = run(0xF7, false);
    double sparse_wa = run(0x13, false);
    bench::row("  %-34s %8.3f GB/s", "dense 0xF7 (bug workaround)",
               dense_wa);
    bench::row("  %-34s %8.3f GB/s", "sparse 0x13 (bug workaround)",
               sparse_wa);

    double dense_fix = run(0xF7, true);
    double sparse_fix = run(0x13, true);
    bench::row("  %-34s %8.3f GB/s", "dense 0xF7 (fixed RTL)",
               dense_fix);
    bench::row("  %-34s %8.3f GB/s", "sparse 0x13 (fixed RTL)",
               sparse_fix);

    bench::row("\n  paper shape: the single-issuer workaround keeps"
               " gather far below line rate; dense > sparse; fixed"
               " RTL recovers several GB/s.");
    return 0;
}
